"""The async control plane (``control_plane='async'``): push-based
status, master-bypass (``dsteal``) stealing, and the event-driven
master loop, checked against the legacy synchronous sweep oracle.

Covers the PR-10 contract: identical answers to ``'sweep'`` on TC, MCF
and GM under the process and cluster runtimes, task conservation under
direct steals (a property test, also with protocol checking on — the
``runtime='checked'`` configuration), cancellation of a running async
job, the wake-on-first-message fix to ``_wait_for_wake``, steal-plan
memoization, and the new control-plane timers on both modes.
"""

import functools
import queue
import random
import shutil
import tempfile
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    count_triangles,
    max_clique_reference,
    triangle_query,
)
from repro.apps import MaxCliqueComper, TriangleCountComper
from repro.apps.match import SubgraphMatchComper
from repro.core import GThinkerConfig, Session, run_job
from repro.core.api import Comper, SumAggregator, Task
from repro.core.containers import deserialize_tasks
from repro.core.controlplane import (
    ControlPlaneMaster,
    FailureInjector,
    NodeSession,
    NodeStatus,
)
from repro.core.errors import JobCancelledError
from repro.core.metrics import MetricsRegistry
from repro.core.session import JOB_CANCELLED, JOB_RUNNING
from repro.core.worker import Worker
from repro.graph import Graph, erdos_renyi
from repro.graph.partition import hash_partition
from repro.net.transport import ProcessTransport


def cfg(**kw):
    base = dict(
        num_workers=2, compers_per_worker=2, task_batch_size=4,
        cache_capacity=256, cache_buckets=16,
        aggregator_sync_period_s=0.005,
        control_reply_timeout_s=30.0,
    )
    base.update(kw)
    return GThinkerConfig(**base)


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(60, 0.15, seed=11)


def test_config_rejects_unknown_control_plane():
    with pytest.raises(ValueError):
        GThinkerConfig(num_workers=2, control_plane="bogus")


# -- answers match the serial oracle under both runtimes ------------------


GM_FACTORY = functools.partial(SubgraphMatchComper, triangle_query())


@pytest.mark.parametrize("runtime", ["process", "cluster"])
def test_async_tc_matches_oracle(graph, runtime):
    expected = count_triangles(graph)
    res = run_job(TriangleCountComper, graph,
                  cfg(control_plane="async"), runtime=runtime)
    assert res.aggregate == expected
    assert res.metrics.get("control:status_pushes", 0) > 0


@pytest.mark.parametrize("runtime", ["process", "cluster"])
def test_async_mcf_matches_oracle(graph, runtime):
    ref = max_clique_reference(graph)
    res = run_job(MaxCliqueComper, graph,
                  cfg(control_plane="async"), runtime=runtime)
    clique = sorted(res.aggregate)
    assert len(clique) == len(ref)
    for i, u in enumerate(clique):
        for v in clique[i + 1:]:
            assert v in graph.neighbors(u)


@pytest.mark.parametrize("runtime", ["process", "cluster"])
def test_async_gm_matches_oracle(graph, runtime):
    oracle = run_job(GM_FACTORY, graph, cfg(), runtime="serial")
    res = run_job(GM_FACTORY, graph,
                  cfg(control_plane="async"), runtime=runtime)
    assert res.aggregate == oracle.aggregate


# -- direct steals never duplicate or drop a task (property test) ---------
#
# A two-node rig driven entirely through NodeSession.handle: the victim
# answers fire-and-forget ``dsteal`` commands by shipping L_file batches
# straight over the data transport; after the thief's comm loop lands
# them, the task-id multiset across both nodes must equal the original.
# Parametrized over check_protocols — True is exactly the extra
# validation ``runtime='checked'`` switches on (see job.py) — so the
# conservation property also holds under the checked configuration.


def _two_node_rig(tmpdir, check_protocols):
    config = cfg(compers_per_worker=1, control_plane="async",
                 check_protocols=check_protocols)
    queues = [queue.Queue(), queue.Queue()]
    workers, sessions = [], []
    for wid in (0, 1):
        metrics = MetricsRegistry()
        transport = ProcessTransport(wid, queues, metrics=metrics)
        spill = Path(tmpdir) / f"w{wid}"
        spill.mkdir()
        worker = Worker(
            worker_id=wid, num_workers=2, config=config,
            app_factory=TriangleCountComper, transport=transport,
            metrics=metrics, spill_dir=spill,
        )
        worker.load_rows([])
        workers.append(worker)
        sessions.append(
            NodeSession(worker, transport, FailureInjector(None, wid, 0),
                        metrics, config)
        )
    return workers, sessions


def _drain_lfile_contexts(worker):
    contexts = []
    while True:
        info = worker.l_file.take_payload()
        if info is None:
            break
        payload, num = info
        tasks = deserialize_tasks(payload)
        assert len(tasks) == num
        contexts.extend(t.context for t in tasks)
    return contexts


@pytest.mark.parametrize("check_protocols", [False, True])
@settings(deadline=None, max_examples=25)
@given(
    batch_sizes=st.lists(st.integers(min_value=1, max_value=6),
                         min_size=1, max_size=4),
    steal_count=st.integers(min_value=1, max_value=8),
    max_tasks=st.integers(min_value=1, max_value=8),
)
def test_dsteal_conserves_task_multiset(check_protocols, batch_sizes,
                                        steal_count, max_tasks):
    tmpdir = tempfile.mkdtemp(prefix="dsteal-")
    try:
        workers, sessions = _two_node_rig(tmpdir, check_protocols)
        victim, thief = workers
        expected, next_ctx = [], 0
        for size in batch_sizes:
            tasks = [Task(context=next_ctx + i) for i in range(size)]
            next_ctx += size
            expected.extend(t.context for t in tasks)
            victim.l_file.spill(tasks)
        for _ in range(steal_count):
            reply = sessions[0].handle(("dsteal", 1, max_tasks))
            # The victim always pushes a corrective status back, even
            # when it had nothing left to give.
            assert reply[0] == "status"
            assert isinstance(reply[1], NodeStatus)
        # Land whatever was shipped; each batch is one inbox message.
        while thief.comm.step():
            pass
        survivors = _drain_lfile_contexts(victim) + _drain_lfile_contexts(thief)
        assert sorted(survivors) == sorted(expected)
        direct = sessions[0].metrics.get("steal:direct_batches")
        assert direct == min(steal_count, len(batch_sizes))
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)


# -- a steal-heavy async job actually uses the direct path ----------------


def _skewed_graph(heavy_worker, num_workers=2):
    """Same construction as the fault-matrix steal workload: one worker
    owns a dense 48-vertex partition whose MCF tasks decompose and stall
    the spawn cursor, making it the deterministic first steal victim."""
    heavy, light = [], []
    v = 0
    while len(heavy) < 48 or len(light) < 8:
        owner = hash_partition(v, num_workers)
        (heavy if owner == heavy_worker else light).append(v)
        v += 1
    ids = heavy[:48] + light[:8]
    heavy_set = set(heavy[:48])
    rng = random.Random(13)
    edges = [(ids[i], ids[j])
             for i in range(len(ids)) for j in range(i + 1, len(ids))
             if rng.random() < (0.5 if ids[i] in heavy_set
                                and ids[j] in heavy_set else 0.15)]
    return Graph.from_edges(edges, extra_vertices=ids)


def test_async_steals_bypass_master():
    g = _skewed_graph(heavy_worker=0)
    config = cfg(task_batch_size=1, decompose_threshold=4,
                 control_plane="async")
    res = run_job(MaxCliqueComper, g, config, runtime="process")
    ref = max_clique_reference(g)
    assert len(res.aggregate) == len(ref)
    stats = res.control_plane_stats
    assert stats.direct_steal_batches > 0
    assert stats.status_pushes > 0
    # Every direct batch is also counted in the generic steal counters.
    assert res.metrics.get("steal:batches", 0) >= stats.direct_steal_batches


# -- cancellation of a running async job ----------------------------------


class SlowComper(Comper):
    """A long steady burn (module level: runtime='process' pickles it)."""

    def __init__(self, iters: int = 2000, delay: float = 0.002) -> None:
        super().__init__()
        self.iters = iters
        self.delay = delay

    def task_spawn(self, v) -> None:
        if v.id < 4:
            t = Task(context=0)
            t.pull(v.id)
            self.add_task(t)

    def compute(self, task, frontier) -> bool:
        time.sleep(self.delay)
        task.context += 1
        if task.context >= self.iters:
            self.aggregate(1)
            return False
        task.pull(frontier[0].id)
        return True

    def make_aggregator(self):
        return SumAggregator()


def test_async_running_job_cancels(graph):
    config = cfg(compers_per_worker=1, sync_every_rounds=2,
                 inline_iteration_limit=2, control_plane="async")
    with Session(graph, config, runtime="process") as session:
        handle = session.submit(SlowComper)
        deadline = time.monotonic() + 10
        while handle.status() != JOB_RUNNING:
            assert time.monotonic() < deadline, "job never started"
            time.sleep(0.005)
        time.sleep(0.05)
        assert handle.cancel()
        with pytest.raises(JobCancelledError):
            handle.result(timeout=30)
        assert handle.status() == JOB_CANCELLED
        # The session survives: a follow-up async job runs clean.
        after = session.submit(TriangleCountComper)
        assert after.result(timeout=60).aggregate == count_triangles(graph)


# -- _wait_for_wake: wake on the first pending message --------------------


class _RecordingMaster(ControlPlaneMaster):
    """A master with plumbing stubbed for unit-level protocol tests."""

    def __init__(self, config, replies=None):
        super().__init__(config, TriangleCountComper, join_timeout_s=30.0)
        self.sent = []
        self._replies = replies or (lambda cmd: None)
        self.drain_calls = []

    @property
    def num_nodes(self):
        return self.config.num_workers

    def _send(self, node_id, cmd):
        self.sent.append((node_id, cmd))

    def _recv(self, node_id, timeout=None):
        return self._replies(self.sent[-1][1])

    def _drain_events(self, timeout):
        self.drain_calls.append(timeout)


def test_pending_wake_skips_the_blocking_drain():
    """A wake consumed out-of-band (e.g. during a sweep's _recv) must
    make the next _wait_for_wake return immediately instead of sleeping
    out its full timeout — the idle-then-burst regression."""
    master = _RecordingMaster(cfg())
    assert master._note_oob(0, ("wake", 0))
    t0 = time.perf_counter()
    assert master._wait_for_wake(10.0)
    assert time.perf_counter() - t0 < 1.0
    assert master.drain_calls == []  # never reached the backend
    # The flag is one-shot: the next wait really blocks on the backend.
    assert not master._wait_for_wake(0.0)
    assert master.drain_calls == [0.0]


def test_status_push_counts_and_folds_once():
    master = _RecordingMaster(cfg())
    master._status_table = [None] * 2
    master._status_heard = [0.0] * 2
    status = NodeStatus(worker_id=1, tasks_in_memory=0, tasks_on_disk=0,
                        unspawned=0, outgoing=0, sent=3, received=3,
                        progress=7, workload=0, partial=5)
    assert master._note_oob(1, ("status", status))
    assert master.global_aggregator.value == 5
    assert status.partial is None  # folded exactly once, then cleared
    assert master._status_table[1] is status
    assert master._status_dirty
    assert master.metrics.get("control:status_pushes") == 1
    # A synchronous reply is not consumed as OOB.
    assert not master._note_oob(0, ("stolen", 4))


@pytest.mark.parametrize("control_plane", ["sweep", "async"])
def test_idle_burst_job_does_not_wait_out_the_sync_period(graph,
                                                          control_plane):
    """With a 5 s sync period a short job must still finish in a small
    fraction of one period: drained nodes wake the master immediately
    in both modes (wake edge / status push), so completion latency is
    bounded by work, not by the sweep cadence."""
    config = cfg(aggregator_sync_period_s=5.0, control_plane=control_plane)
    t0 = time.monotonic()
    res = run_job(TriangleCountComper, graph, config, runtime="process")
    assert res.aggregate == count_triangles(graph)
    assert time.monotonic() - t0 < 4.0


# -- steal-plan memoization ------------------------------------------------


def _statuses(workloads):
    return [
        NodeStatus(worker_id=i, tasks_in_memory=1, tasks_on_disk=0,
                   unspawned=0, outgoing=0, sent=0, received=0,
                   progress=0, workload=w, partial=None)
        for i, w in enumerate(workloads)
    ]


def test_plan_steals_memoizes_unchanged_statuses():
    config = cfg(task_batch_size=4, steal_batches=2)
    master = _RecordingMaster(config, replies=lambda cmd: ("stolen", cmd[2]))
    master._plan_steals(_statuses([0, 100]))
    first_round = len(master.sent)
    assert first_round > 0
    assert all(cmd[0] == "steal" for _nid, cmd in master.sent)
    # Identical (fresh) statuses: the sorted view is unchanged, so the
    # whole plan is skipped and counted.
    master._plan_steals(_statuses([0, 100]))
    assert len(master.sent) == first_round
    assert master.metrics.get("control:steal_plan_skipped") == 1
    # A changed estimate recomputes.
    master._plan_steals(_statuses([0, 300]))
    assert len(master.sent) > first_round
    assert master.metrics.get("control:steal_plan_skipped") == 1


def test_plan_steals_async_memoizes_and_fires_and_forgets():
    config = cfg(task_batch_size=4, steal_batches=2)
    master = _RecordingMaster(config)
    # Inside the hysteresis band: nothing to send, but the key is
    # recorded so the next identical table skips the plan entirely.
    master._status_table = _statuses([10, 12])
    master._plan_steals_async()
    assert master.sent == []
    master._plan_steals_async()
    assert master.metrics.get("control:steal_plan_skipped") == 1
    # A real gap publishes dsteal commands without any _recv round-trip
    # and optimistically discounts the victim's workload.
    master._status_table = _statuses([0, 100])
    master._plan_steals_async()
    assert master.sent and all(cmd[0] == "dsteal"
                               for _nid, cmd in master.sent)
    assert master._status_table[1].workload < 100


# -- control-plane timers and the typed accessor ---------------------------


@pytest.mark.parametrize("control_plane", ["sweep", "async"])
def test_master_timers_reported_on_both_modes(graph, control_plane):
    res = run_job(TriangleCountComper, graph,
                  cfg(control_plane=control_plane), runtime="process")
    stats = res.control_plane_stats
    assert stats.master_sweep_s > 0.0
    assert stats.control_idle_s >= 0.0
    assert "time:master_sweep_s" in res.metrics
    assert "time:control_idle_s" in res.metrics
    if control_plane == "async":
        assert stats.status_pushes > 0
    else:
        assert stats.status_pushes == 0
