"""Tests for the set-enumeration tree (paper Fig. 1)."""

from itertools import chain, combinations

from hypothesis import given, settings, strategies as st

from repro.algorithms import children, clique_children, enumerate_subsets, subtree_size
from repro.graph import Graph


def powerset_nonempty(universe):
    return {
        tuple(c)
        for c in chain.from_iterable(
            combinations(sorted(universe), r) for r in range(1, len(universe) + 1)
        )
    }


def test_fig1_tree():
    """The paper's 4-vertex example: 15 non-empty subsets, each once."""
    subsets = list(enumerate_subsets([0, 1, 2, 3]))
    assert len(subsets) == 15
    assert set(subsets) == powerset_nonempty([0, 1, 2, 3])


def test_children_extend_with_larger_only():
    assert children((0, 2), [0, 1, 2, 3]) == [(0, 2, 3)]
    assert children((), [0, 1, 2]) == [(0,), (1,), (2,)]
    assert children((2,), [0, 1, 2]) == []


def test_subtree_size():
    assert subtree_size((), [0, 1, 2, 3]) == 16  # includes the root
    assert subtree_size((1,), [0, 1, 2, 3]) == 4  # {1},{1,2},{1,3},{1,2,3}


@settings(max_examples=20)
@given(st.sets(st.integers(0, 7), min_size=1, max_size=6))
def test_every_subset_once_property(universe):
    subsets = list(enumerate_subsets(sorted(universe)))
    assert len(subsets) == len(set(subsets))
    assert set(subsets) == powerset_nonempty(universe)


def test_clique_children_match_paper_semantics(tiny_graph):
    """Children of <S, Γ_>(S)> are <S ∪ u, Γ_>(S ∪ u)>."""
    adj = tiny_graph.adjacency()
    # S = {0}, ext = Γ_>(0) = {1, 2}
    kids = clique_children((0,), (1, 2), adj)
    assert kids == [((0, 1), (2,)), ((0, 2), ())]
    # Child <{0,1}, {2}>: 2 is adjacent to both 0 and 1 and larger than 1.
    grandkids = clique_children((0, 1), (2,), adj)
    assert grandkids == [((0, 1, 2), ())]


def test_clique_children_cover_all_cliques():
    g = Graph.from_edges([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    adj = g.adjacency()

    found = set()

    def walk(s, ext):
        found.add(tuple(sorted(s)))
        for child_s, child_ext in clique_children(s, ext, adj):
            walk(child_s, child_ext)

    for v in g.vertices():
        walk((v,), g.neighbors_gt(v))

    # Everything found is a clique and every clique is found.
    for s in found:
        for i, u in enumerate(s):
            for v in s[i + 1:]:
                assert g.has_edge(u, v)
    from repro.algorithms import enumerate_maximal_cliques

    for c in enumerate_maximal_cliques(g):
        assert tuple(sorted(c)) in found
