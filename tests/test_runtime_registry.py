"""The pluggable runtime registry: resolution, capabilities, uniform
errors, custom registration, and spill-dir lifecycle."""

import tempfile

import pytest

from repro.core import (
    GThinkerConfig,
    JobResult,
    UnknownRuntimeError,
    UnsupportedRuntimeFeature,
    available_runtimes,
    capability_matrix,
    get_runtime,
    register_runtime,
    resume_job,
    run_job,
    unregister_runtime,
)
from repro.core.runtime import RuntimeCapabilities
from repro.apps import TriangleCountComper
from repro.algorithms import count_triangles
from repro.graph import erdos_renyi


def cfg(**kw):
    base = dict(num_workers=2, compers_per_worker=2, task_batch_size=4,
                cache_capacity=64, cache_buckets=16)
    base.update(kw)
    return GThinkerConfig(**base)


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(50, 0.12, seed=21)


# -- resolution -----------------------------------------------------------


def test_all_builtin_runtimes_registered():
    assert set(available_runtimes()) >= {"serial", "threaded", "checked",
                                         "process"}


def test_capability_matrix_shape():
    matrix = capability_matrix()
    features = {"checkpointing", "failure_injection", "protocol_checking",
                "resume", "cancellation"}
    for name in ("serial", "threaded", "checked", "process"):
        assert set(matrix[name]) == features
    assert matrix["serial"]["checkpointing"]
    assert matrix["serial"]["failure_injection"]
    # The process runtime is fully fault-tolerant: sync-barrier
    # checkpoints, worker-kill injection, resume from shards.
    for feature in features:
        assert matrix["process"][feature], feature
    assert not matrix["threaded"]["checkpointing"]
    # Every single-host runtime supports cooperative cancellation;
    # cluster declines it (aborting mid-epoch would strand attach-mode
    # nodes).
    for name in ("serial", "threaded", "checked", "process"):
        assert matrix[name]["cancellation"], name
    if "cluster" in matrix:
        assert not matrix["cluster"]["cancellation"]


def test_every_builtin_runs_through_registry(graph):
    expected = count_triangles(graph)
    for name in ("serial", "threaded", "checked", "process"):
        result = run_job(TriangleCountComper, graph, cfg(), runtime=name)
        assert isinstance(result, JobResult)
        assert result.aggregate == expected, name


# -- uniform errors -------------------------------------------------------


def test_unknown_runtime_uniform_error(graph):
    with pytest.raises(UnknownRuntimeError, match="nope"):
        run_job(TriangleCountComper, graph, cfg(), runtime="nope")
    with pytest.raises(UnknownRuntimeError):
        resume_job(TriangleCountComper, graph, "/nonexistent.ckpt",
                   runtime="nope")
    # Back-compat: callers that caught ValueError still work.
    assert issubclass(UnknownRuntimeError, ValueError)
    assert issubclass(UnsupportedRuntimeFeature, ValueError)


def test_error_message_lists_registered_runtimes(graph):
    with pytest.raises(UnknownRuntimeError, match="serial"):
        run_job(TriangleCountComper, graph, cfg(), runtime="typo")


@pytest.mark.parametrize("runtime", ["threaded", "checked"])
def test_checkpointing_rejected_uniformly(graph, runtime):
    with pytest.raises(UnsupportedRuntimeFeature, match="checkpointing"):
        run_job(TriangleCountComper, graph,
                cfg(checkpoint_every_syncs=1), runtime=runtime,
                checkpoint_path="/tmp/unused.ckpt")


@pytest.mark.parametrize("runtime", ["threaded", "checked"])
def test_failure_injection_rejected_uniformly(graph, runtime):
    with pytest.raises(UnsupportedRuntimeFeature, match="failure_injection"):
        run_job(TriangleCountComper, graph, cfg(), runtime=runtime,
                abort_after_rounds=3)


def test_failure_plan_rejected_off_process(graph):
    """A worker-kill plan needs worker processes: threaded/checked reject
    via the capability gate, serial rejects explicitly (its
    failure_injection capability covers abort_after_rounds only)."""
    from repro.core import FailurePlanConfig

    plan = FailurePlanConfig(kill_worker=0, when="sync")
    for runtime in ("serial", "threaded", "checked"):
        with pytest.raises(UnsupportedRuntimeFeature):
            run_job(TriangleCountComper, graph, cfg(failure_plan=plan),
                    runtime=runtime)


def test_resume_works_on_process(tmp_path, graph):
    """resume_job shares run_job's dispatch: the process runtime now has
    the resume capability and restarts a job from a serial shard."""
    ckpt = tmp_path / "job.ckpt"
    with pytest.raises(Exception):
        run_job(TriangleCountComper, graph,
                cfg(checkpoint_every_syncs=1, sync_every_rounds=2),
                runtime="serial", checkpoint_path=str(ckpt),
                abort_after_rounds=4)
    assert ckpt.exists()
    result = resume_job(TriangleCountComper, graph, str(ckpt), cfg(),
                        runtime="process")
    assert result.aggregate == count_triangles(graph)


def test_resume_works_on_threaded_and_checked(tmp_path, graph):
    ckpt = tmp_path / "job.ckpt"
    with pytest.raises(Exception):
        run_job(TriangleCountComper, graph,
                cfg(checkpoint_every_syncs=1, sync_every_rounds=2),
                runtime="serial", checkpoint_path=str(ckpt),
                abort_after_rounds=4)
    expected = count_triangles(graph)
    for runtime in ("threaded", "checked"):
        result = resume_job(TriangleCountComper, graph, str(ckpt), cfg(),
                            runtime=runtime)
        assert result.aggregate == expected, runtime


# -- custom registration --------------------------------------------------


class _RecordingExecutor:
    """A toy runtime: delegates to serial, tags the result."""

    calls = []

    def execute(self, request):
        self.calls.append(request.config.num_workers)
        return get_runtime("serial").factory().execute(request)


def test_custom_runtime_registration(graph):
    register_runtime("recording", _RecordingExecutor,
                     RuntimeCapabilities(resume=True))
    try:
        result = run_job(TriangleCountComper, graph, cfg(),
                         runtime="recording")
        assert result.aggregate == count_triangles(graph)
        assert _RecordingExecutor.calls == [2]
    finally:
        unregister_runtime("recording")
        _RecordingExecutor.calls.clear()
    with pytest.raises(UnknownRuntimeError):
        run_job(TriangleCountComper, graph, cfg(), runtime="recording")


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError, match="already registered"):
        register_runtime("serial", _RecordingExecutor)


# -- spill-dir lifecycle --------------------------------------------------


def _spill_dirs(root):
    return [p for p in root.iterdir() if p.name.startswith("gthinker-spill")]


@pytest.fixture
def private_tmpdir(tmp_path, monkeypatch):
    """Point tempfile at an empty dir so leak checks see only our job."""
    monkeypatch.setattr(tempfile, "tempdir", str(tmp_path))
    yield tmp_path


@pytest.mark.parametrize("runtime", ["serial", "threaded", "process"])
def test_no_spill_dir_leak_on_success(private_tmpdir, graph, runtime):
    run_job(TriangleCountComper, graph, cfg(), runtime=runtime)
    assert _spill_dirs(private_tmpdir) == []


def test_no_spill_dir_leak_on_failure(private_tmpdir, graph):
    with pytest.raises(Exception):
        run_job(TriangleCountComper, graph, cfg(), runtime="serial",
                abort_after_rounds=2)
    assert _spill_dirs(private_tmpdir) == []


def test_explicit_spill_dir_is_preserved(tmp_path, graph):
    spill = tmp_path / "my-spills"
    spill.mkdir()
    run_job(TriangleCountComper, graph, cfg(spill_dir=str(spill)),
            runtime="serial")
    assert spill.exists()  # caller-owned: never removed
