"""Fault-tolerance tests: checkpoint, injected failure, recovery."""

import pytest

from repro.algorithms import count_triangles, enumerate_quasi_cliques, max_clique_reference
from repro.apps import MaxCliqueComper, QuasiCliqueComper, TriangleCountComper
from repro.core import GThinkerConfig, resume_job, run_job
from repro.core.checkpoint import (
    JobCheckpoint,
    TaskSnapshot,
    WorkerSnapshot,
    restore_task,
    snapshot_task,
)
from repro.core.api import Task
from repro.core.errors import CheckpointError, JobAbortedError
from repro.graph import erdos_renyi


def cfg(**kw):
    base = dict(
        num_workers=3, compers_per_worker=2, task_batch_size=4,
        cache_capacity=64, cache_buckets=16, decompose_threshold=16,
        sync_every_rounds=8, checkpoint_every_syncs=1,
    )
    base.update(kw)
    return GThinkerConfig(**base)


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(130, 0.09, seed=77)


class TestTaskSnapshots:
    def test_roundtrip_fresh_task(self):
        t = Task(context={"S": (1,)})
        t.g.add_vertex(1, (2, 3), label=4)
        t.pull(2)
        t.pull(3)
        back = restore_task(snapshot_task(t))
        assert back.context == {"S": (1,)}
        assert back.g.neighbors(1) == (2, 3)
        assert back.g.label(1) == 4
        assert back.pending_pulls() == (2, 3)

    def test_roundtrip_inflight_task(self):
        """A parked task saves its in-flight pulls for re-requesting."""
        t = Task()
        t.pull(5)
        t.pulls_in_flight = t.take_pulls()
        back = restore_task(snapshot_task(t))
        assert back.pending_pulls() == (5,)
        assert back.pulls_in_flight == []

    def test_roundtrip_mixed_inflight_and_queued_pulls(self):
        """S1 regression: a task can hold in-flight pulls *and* freshly
        requested ones at once; the snapshot must be their union, not
        just the in-flight set."""
        t = Task()
        t.pull(5)
        t.pull(6)
        t.pulls_in_flight = t.take_pulls()
        t.pull(6)  # re-requested while still in flight: dedup
        t.pull(7)  # new pull queued behind the in-flight ones
        snap = snapshot_task(t)
        assert snap.pulls == (5, 6, 7)
        back = restore_task(snap)
        assert back.pending_pulls() == (5, 6, 7)
        assert back.pulls_in_flight == []


class TestCheckpointFile:
    def test_save_load_roundtrip(self, tmp_path):
        ckpt = JobCheckpoint(
            worker_snapshots=[WorkerSnapshot(spawn_cursor=3, outputs=["x"])],
            aggregator_global=42,
            num_workers=1,
            compers_per_worker=2,
        )
        path = tmp_path / "job.ckpt"
        ckpt.save(path)
        back = JobCheckpoint.load(path)
        assert back.aggregator_global == 42
        assert back.worker_snapshots[0].spawn_cursor == 3
        assert back.worker_snapshots[0].outputs == ["x"]

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            JobCheckpoint.load(tmp_path / "nope.ckpt")

    def test_load_garbage(self, tmp_path):
        bad = tmp_path / "bad.ckpt"
        bad.write_bytes(b"not a pickle")
        with pytest.raises(CheckpointError):
            JobCheckpoint.load(bad)

    def test_load_wrong_type(self, tmp_path):
        import pickle

        bad = tmp_path / "wrong.ckpt"
        bad.write_bytes(pickle.dumps({"not": "a checkpoint"}))
        with pytest.raises(CheckpointError):
            JobCheckpoint.load(bad)

    def test_epoch_and_transport_counters_roundtrip(self, tmp_path):
        """The process runtime's barrier fields survive save/load."""
        ckpt = JobCheckpoint(
            worker_snapshots=[WorkerSnapshot(spawn_cursor=1, sent=17,
                                             received=17)],
            aggregator_global=0,
            num_workers=1,
            compers_per_worker=1,
            epoch=7,
        )
        path = tmp_path / "epoch.ckpt"
        ckpt.save(path)
        back = JobCheckpoint.load(path)
        assert back.epoch == 7
        assert back.worker_snapshots[0].sent == 17
        assert back.worker_snapshots[0].received == 17


class TestSnapshotNonDestructive:
    """S5 regression: capturing a worker must not reorder B_task or
    perturb any container metric."""

    def test_ready_buffer_get_batch_put_roundtrip_is_fifo(self):
        from repro.core.containers import ReadyBuffer

        buf = ReadyBuffer()
        for i in range(7):
            buf.put(Task(context=i))
        drained = buf.get_batch(limit=10**9)
        for t in drained:
            buf.put(t)
        assert [t.context for t in buf.get_batch(limit=10**9)] == list(range(7))

    def test_snapshot_worker_preserves_b_task_and_metrics(self, graph):
        from repro.core import build_cluster
        from repro.core.checkpoint import snapshot_worker

        cluster = build_cluster(TriangleCountComper, graph, cfg())
        w = cluster.workers[0]
        engine = w.engines[0]
        for i in range(5):
            engine.b_task.put(Task(context=("probe", i)))
        before = cluster.metrics.snapshot()
        snap = snapshot_worker(w)
        assert cluster.metrics.snapshot() == before
        # The buffered tasks were captured...
        probed = [ts.context for ts in snap.tasks
                  if isinstance(ts.context, tuple) and ts.context[0] == "probe"]
        assert probed == [("probe", i) for i in range(5)]
        # ...and are still buffered, in their original FIFO order.
        assert [t.context for t in engine.b_task.get_batch(limit=10**9)] == \
            [("probe", i) for i in range(5)]


def _abort_then_resume(app_factory, graph, tmp_path, rounds):
    ck = str(tmp_path / "job.ckpt")
    with pytest.raises(JobAbortedError):
        run_job(app_factory, graph, cfg(), runtime="serial",
                checkpoint_path=ck, abort_after_rounds=rounds)
    return resume_job(app_factory, graph, ck,
                      cfg(checkpoint_every_syncs=0))


class TestFailureRecovery:
    def test_tc_recovers_exact_count(self, graph, tmp_path):
        res = _abort_then_resume(TriangleCountComper, graph, tmp_path, rounds=24)
        assert res.aggregate == count_triangles(graph)

    def test_tc_recovers_from_early_failure(self, graph, tmp_path):
        res = _abort_then_resume(TriangleCountComper, graph, tmp_path, rounds=9)
        assert res.aggregate == count_triangles(graph)

    def test_mcf_recovers(self, graph, tmp_path):
        res = _abort_then_resume(MaxCliqueComper, graph, tmp_path, rounds=10)
        assert len(res.aggregate) == len(max_clique_reference(graph))

    def test_quasiclique_recovers_outputs(self, tmp_path):
        g = erdos_renyi(20, 0.3, seed=5)
        res = _abort_then_resume(
            lambda: QuasiCliqueComper(gamma=0.6, min_size=4), g, tmp_path, rounds=12
        )
        assert set(res.outputs) == set(enumerate_quasi_cliques(g, 0.6, min_size=4))

    def test_abort_before_any_checkpoint(self, graph, tmp_path):
        """Failing before the first sync leaves no checkpoint file."""
        ck = tmp_path / "early.ckpt"
        with pytest.raises(JobAbortedError):
            run_job(TriangleCountComper, graph, cfg(sync_every_rounds=1000),
                    runtime="serial", checkpoint_path=str(ck),
                    abort_after_rounds=3)
        assert not ck.exists()

    def test_resume_worker_count_mismatch(self, graph, tmp_path):
        ck = str(tmp_path / "job.ckpt")
        with pytest.raises(JobAbortedError):
            run_job(TriangleCountComper, graph, cfg(), runtime="serial",
                    checkpoint_path=ck, abort_after_rounds=24)
        with pytest.raises(ValueError):
            resume_job(TriangleCountComper, graph, ck,
                       cfg(num_workers=5, checkpoint_every_syncs=0))

    def test_resume_default_config_from_checkpoint(self, graph, tmp_path):
        ck = str(tmp_path / "job.ckpt")
        with pytest.raises(JobAbortedError):
            run_job(TriangleCountComper, graph, cfg(), runtime="serial",
                    checkpoint_path=ck, abort_after_rounds=24)
        res = resume_job(TriangleCountComper, graph, ck)  # config inferred
        assert res.aggregate == count_triangles(graph)
        assert res.num_workers == 3


def test_checkpoint_of_completed_job_resumes_to_same_answer(graph, tmp_path):
    """Resuming from the final checkpoint re-delivers the same result."""
    ck = str(tmp_path / "job.ckpt")
    first = run_job(TriangleCountComper, graph, cfg(), runtime="serial",
                    checkpoint_path=ck)
    resumed = resume_job(TriangleCountComper, graph, ck,
                         cfg(checkpoint_every_syncs=0))
    assert first.aggregate == resumed.aggregate == count_triangles(graph)
