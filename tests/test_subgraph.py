"""Tests for the task-owned Subgraph container."""

from repro.core.subgraph import Subgraph


def make(adj, labels=None):
    s = Subgraph()
    for v, row in adj.items():
        s.add_vertex(v, row, label=(labels or {}).get(v, 0))
    return s


def test_add_and_access():
    s = make({0: (1, 2), 1: (0,), 2: (0,)})
    assert s.num_vertices == 3
    assert s.neighbors(0) == (1, 2)
    assert 0 in s and 9 not in s
    assert len(s) == 3


def test_labels_default_zero():
    s = make({0: ()}, labels={0: 5})
    assert s.label(0) == 5
    s.add_vertex(1, ())
    assert s.label(1) == 0


def test_keep_only_filters():
    s = Subgraph()
    s.add_vertex(0, (1, 2, 3, 4), keep_only={2, 4})
    assert s.neighbors(0) == (2, 4)


def test_re_add_overwrites():
    s = make({0: (1,)})
    s.add_vertex(0, (2, 3))
    assert s.neighbors(0) == (2, 3)


def test_remove_vertex():
    s = make({0: (1,), 1: (0,)})
    s.remove_vertex(0)
    assert 0 not in s
    s.remove_vertex(42)  # idempotent


def test_induced():
    s = make({0: (1, 2), 1: (0, 2), 2: (0, 1), 3: (0,)})
    sub = s.induced([0, 1])
    assert set(sub.vertices()) == {0, 1}
    assert sub.neighbors(0) == (1,)


def test_symmetrize_upward_rows():
    """Γ_>-style rows become full undirected adjacency."""
    s = make({0: (1, 2), 1: (2,), 2: ()})
    s.symmetrize()
    assert s.neighbors(0) == (1, 2)
    assert s.neighbors(1) == (0, 2)
    assert s.neighbors(2) == (0, 1)


def test_symmetrize_ignores_absent_vertices():
    s = make({0: (1, 99), 1: ()})  # 99 is not a member
    s.symmetrize()
    assert s.neighbors(0) == (1,)
    assert s.neighbors(1) == (0,)
    assert 99 not in s


def test_symmetrize_sorts_rows():
    s = make({0: (), 1: (), 2: ()})
    s.add_vertex(3, ())
    s.add_vertex(0, (3, 1))
    s.symmetrize()
    assert s.neighbors(0) == (1, 3)


def test_memory_estimate_grows():
    s = Subgraph()
    before = s.memory_estimate_bytes()
    s.add_vertex(0, tuple(range(100)))
    assert s.memory_estimate_bytes() > before + 700
