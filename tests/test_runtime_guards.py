"""Runtime safety guards: livelock detection, error propagation, limits."""

import pytest

from repro.core.api import Comper, Task, VertexView
from repro.core.config import GThinkerConfig
from repro.core.errors import GThinkerError, TaskError
from repro.core.job import build_cluster, run_job
from repro.core.runtime import SerialRuntime, ThreadedRuntime
from repro.graph import erdos_renyi
from repro.sim import SimulatedRuntime, run_simulated_job


class Quiet(Comper):
    def task_spawn(self, v):
        pass

    def compute(self, task, frontier):
        return False


class Forever(Comper):
    """Every task re-pulls forever: the job can never finish."""

    def task_spawn(self, v: VertexView) -> None:
        t = Task(context=v.id)
        if len(v.adj):
            t.pull(v.adj[0])
            self.add_task(t)

    def compute(self, task, frontier):
        task.pull(frontier[0].id)
        return True  # never finishes


def cfg(**kw):
    base = dict(num_workers=2, compers_per_worker=1, task_batch_size=4,
                cache_capacity=64, cache_buckets=8, sync_every_rounds=8)
    base.update(kw)
    return GThinkerConfig(**base)


@pytest.fixture
def graph():
    return erdos_renyi(30, 0.2, seed=4)


def test_serial_livelock_guard(graph):
    cluster = build_cluster(Forever, graph, cfg())
    with pytest.raises(GThinkerError, match="did not terminate"):
        SerialRuntime(max_rounds=200).run(cluster)


def test_threaded_deadline_guard(graph):
    cluster = build_cluster(Forever, graph, cfg(aggregator_sync_period_s=0.01))
    with pytest.raises(GThinkerError, match="exceeded"):
        ThreadedRuntime(join_timeout_s=1.0).run(cluster)


def test_simulated_event_cap(graph):
    cluster = build_cluster(Forever, graph, cfg(), timed_transport=True)
    with pytest.raises(GThinkerError):
        SimulatedRuntime(max_events=2_000).run(cluster)


def test_simulated_virtual_time_cap(graph):
    cluster = build_cluster(Forever, graph, cfg(), timed_transport=True)
    with pytest.raises(GThinkerError):
        SimulatedRuntime(max_virtual_time_s=0.05).run(cluster)


def test_serial_task_error_includes_task_id(graph):
    class Bad(Forever):
        def compute(self, task, frontier):
            raise KeyError("inner")

    with pytest.raises(TaskError, match="task"):
        run_job(Bad, graph, cfg())


def test_empty_graph_job_terminates():
    from repro.graph import Graph

    res = run_job(Quiet, Graph(), cfg())
    assert res.outputs == []


def test_app_that_spawns_nothing_terminates(graph):
    res = run_job(Quiet, graph, cfg())
    assert res.aggregate is None
    assert res.metrics.get("tasks:created", 0) == 0
