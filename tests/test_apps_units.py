"""Unit tests for app internals not covered by end-to-end jobs."""

import pytest

from repro.apps import (
    GtTrimmer,
    LabelTrimmer,
    MaxCliqueComper,
    SubgraphMatchComper,
    TriangleCountComper,
    query_radius,
)
from repro.algorithms import QueryGraph, path_query, star_query, triangle_query


class TestTrimmers:
    def test_gt_trimmer(self):
        t = GtTrimmer()
        assert t.trim(5, 0, (1, 3, 5, 7, 9)) == (7, 9)
        assert t.trim(10, 0, (1, 2)) == ()

    def test_label_trimmer_drops_vertex_with_bad_label(self):
        labels = {1: 0, 2: 1, 3: 2}
        t = LabelTrimmer({0, 1}, lambda u: labels.get(u, 0))
        assert t.trim(9, 2, (1, 2, 3)) == ()  # label 2 not allowed

    def test_label_trimmer_filters_neighbors(self):
        labels = {1: 0, 2: 1, 3: 2}
        t = LabelTrimmer({0, 1}, lambda u: labels.get(u, 0))
        assert t.trim(9, 0, (1, 2, 3)) == (1, 2)


class TestQueryRadius:
    def test_triangle_radius_one(self):
        assert query_radius(triangle_query()) == 1

    def test_path_radius(self):
        # The anchor is the max-degree vertex; degree ties break toward
        # the smallest id, so path(4) anchors at vertex 1 (ecc 3).
        assert query_radius(path_query(2)) == 1
        assert query_radius(path_query(4)) == 3

    def test_star_radius_one(self):
        assert query_radius(star_query(4)) == 1

    def test_disconnected_query_rejected(self):
        q = QueryGraph([(0, 1)])
        q.graph = __import__("repro.graph", fromlist=["Graph"]).Graph.from_edges(
            [(0, 1), (2, 3)]
        )
        with pytest.raises(ValueError):
            query_radius(q)


class TestAppValidation:
    def test_tc_requires_nothing(self):
        app = TriangleCountComper()
        assert app.make_trimmer() is not None
        assert app.make_aggregator() is not None

    def test_gm_trimmer_optional(self):
        app = SubgraphMatchComper(triangle_query())
        assert app.make_trimmer() is None
        labeled = SubgraphMatchComper(triangle_query(), data_labels={0: 0})
        assert labeled.make_trimmer() is not None

    def test_mcf_aggregator_tracks_longest(self):
        agg = MaxCliqueComper().make_aggregator()
        assert agg.combine((1, 2), (3, 4, 5)) == (3, 4, 5)


class TestSymmetryPairs:
    def test_triangle_fully_broken(self):
        q = triangle_query()
        # An unlabeled triangle has 6 automorphisms; symmetry breaking
        # needs at least 2 ordering constraints to kill them all.
        assert len(q.symmetry_pairs) >= 2

    def test_labeled_triangle_no_pairs(self):
        q = triangle_query(labels={0: 0, 1: 1, 2: 2})
        assert q.symmetry_pairs == []

    def test_path_one_pair(self):
        q = path_query(2)  # ends are swappable
        assert len(q.symmetry_pairs) == 1
