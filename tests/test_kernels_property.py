"""Property tests: compiled kernel bodies vs pure-python oracles.

The compiled backend in :mod:`repro.graph.kernels_compiled` is written
as plain-python functions in the numba-compilable subset, so the exact
code that numba compiles in CI also runs *interpreted* here.  Hypothesis
drives those bodies (and the dispatched kernels under every importable
backend) against the pure-python oracles in :mod:`repro.graph.graph`
and brute-force set arithmetic, across the regimes that historically
break intersection kernels: empty and singleton rows, heavy hub skew,
dense overlap, and huge sparse id spaces.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.cliques import _max_clique_bitset, max_clique_reference
from repro.algorithms.quasicliques import enumerate_quasi_cliques
from repro.graph import kernels
from repro.graph.graph import intersect_sorted, intersect_sorted_count
from repro.graph.kernels_compiled import (
    _bitset_and_counts_py,
    _bitset_max_clique_py,
    _intersect_count_kernel,
    _intersect_count_many_py,
    _intersect_kernel,
    _suffix_pos_kernel,
)

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

#: Value bounds spanning dense overlap (8), mid (1000), and huge sparse
#: id spaces (2**40 — also catches any int32 truncation).
_BOUNDS = (8, 50, 1_000, 2**40)


@st.composite
def sorted_ids(draw, max_size: int = 48) -> np.ndarray:
    bound = draw(st.sampled_from(_BOUNDS))
    xs = draw(st.lists(st.integers(0, bound), max_size=max_size))
    return np.unique(np.asarray(xs, dtype=np.int64))


@st.composite
def skewed_pair(draw):
    """(small, huge) pairs that force the galloping path."""
    small = draw(sorted_ids(max_size=4))
    huge = draw(sorted_ids(max_size=400))
    return small, huge


@st.composite
def small_adjacency(draw, max_n: int = 10):
    """A random simple undirected graph as ``{v: sorted tuple}``."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.sets(st.sampled_from(pairs))) if pairs else set()
    adj = {v: set() for v in range(n)}
    for u, v in edges:
        adj[u].add(v)
        adj[v].add(u)
    return {v: tuple(sorted(a)) for v, a in adj.items()}


#: gallop_ratio values covering both strategies: 1 forces galloping for
#: any non-empty pair, a huge ratio forces the two-pointer merge.
_RATIOS = (1, 8, 1 << 30)


# ---------------------------------------------------------------------------
# Pairwise kernels
# ---------------------------------------------------------------------------


@settings(deadline=None, max_examples=120)
@given(sorted_ids(), sorted_ids())
def test_intersect_kernel_matches_oracle(a, b):
    expected = intersect_sorted(a.tolist(), b.tolist())
    small, large = (a, b) if a.size <= b.size else (b, a)
    for ratio in _RATIOS:
        assert _intersect_kernel(small, large, ratio).tolist() == expected


@settings(deadline=None, max_examples=120)
@given(sorted_ids(), sorted_ids())
def test_intersect_count_kernel_matches_oracle(a, b):
    expected = intersect_sorted_count(a.tolist(), b.tolist())
    small, large = (a, b) if a.size <= b.size else (b, a)
    for ratio in _RATIOS:
        assert _intersect_count_kernel(small, large, ratio) == expected


@settings(deadline=None, max_examples=60)
@given(skewed_pair())
def test_gallop_path_on_hub_skew(pair):
    small, huge = pair
    expected = intersect_sorted(small.tolist(), huge.tolist())
    assert _intersect_kernel(small, huge, 1).tolist() == expected
    assert _intersect_count_kernel(small, huge, 1) == len(expected)


@settings(deadline=None, max_examples=80)
@given(sorted_ids(), st.integers(-2, 2**40 + 2))
def test_suffix_pos_kernel_matches_searchsorted(a, v):
    assert _suffix_pos_kernel(a, v) == int(np.searchsorted(a, v, side="right"))


@settings(deadline=None, max_examples=60)
@given(sorted_ids(max_size=16), st.lists(sorted_ids(max_size=24), max_size=6))
def test_intersect_count_many_interpreted_matches_pairwise(a, rows):
    expected = sum(
        intersect_sorted_count(a.tolist(), r.tolist()) for r in rows
    )
    offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    for i, r in enumerate(rows):
        offsets[i + 1] = offsets[i] + r.size
    flat = (np.concatenate(rows) if rows
            else np.empty(0, dtype=np.int64))
    for ratio in _RATIOS:
        assert _intersect_count_many_py(a, flat, offsets, ratio) == expected


# ---------------------------------------------------------------------------
# Dispatched kernels under every importable backend
# ---------------------------------------------------------------------------


@settings(deadline=None, max_examples=60)
@given(sorted_ids(), sorted_ids(), st.lists(sorted_ids(max_size=24), max_size=4))
def test_dispatched_kernels_match_oracles(a, b, rows):
    # Backend switching happens inside the test body (not a fixture) so
    # every hypothesis example exercises each importable backend.
    prior = kernels.current_backend()
    try:
        for backend in kernels.available_backends():
            kernels.select_backend(backend)
            expected = intersect_sorted(a.tolist(), b.tolist())
            assert kernels.intersect(a, b).tolist() == expected
            assert kernels.intersect_count(a, b) == len(expected)
            assert kernels.intersect_count_many(a, rows) == sum(
                intersect_sorted_count(a.tolist(), r.tolist()) for r in rows
            )
            acc = a.tolist()
            for r in rows:
                acc = intersect_sorted(acc, r.tolist())
            assert kernels.intersect_many([a] + rows).tolist() == acc
            if a.size:
                pivot = int(a[a.size // 2])
                out = kernels.suffix_gt(a, pivot)
                assert out.tolist() == [x for x in a.tolist() if x > pivot]
                assert np.shares_memory(out, a) or out.size == 0
    finally:
        kernels.select_backend(prior)


# ---------------------------------------------------------------------------
# Bitset kernels
# ---------------------------------------------------------------------------


@settings(deadline=None, max_examples=60)
@given(st.integers(1, 200), st.data())
def test_pack_and_counts_match_set_arithmetic(n, data):
    rows_pos = data.draw(
        st.lists(
            st.sets(st.integers(0, n - 1)).map(
                lambda s: np.asarray(sorted(s), dtype=np.int64)
            ),
            min_size=1,
            max_size=6,
        )
    )
    mask_pos = data.draw(st.sets(st.integers(0, n - 1)))
    words = kernels.pack_rows(rows_pos, n)
    assert words.shape == (len(rows_pos), kernels.bitset_words(n))
    mask = kernels.pack_mask(
        np.asarray(sorted(mask_pos), dtype=np.int64), n
    )
    expected = [len(set(r.tolist()) & mask_pos) for r in rows_pos]
    # Dispatched (numpy here; compiled in CI) and the interpreted
    # compiled body must both agree with set arithmetic.
    assert kernels.bitset_and_counts(words, mask).tolist() == expected
    out = np.empty(len(rows_pos), dtype=np.int64)
    assert _bitset_and_counts_py(words, mask, out).tolist() == expected


@settings(deadline=None, max_examples=40)
@given(small_adjacency(), st.integers(0, 3))
def test_bitset_max_clique_interpreted_matches_python(adj, lower_bound):
    n = len(adj)
    masks = [0] * n
    rows_pos = []
    for v in range(n):
        m = 0
        for u in adj[v]:
            m |= 1 << u
        masks[v] = m
        rows_pos.append(np.asarray(adj[v], dtype=np.int64))
    words = kernels.pack_rows(rows_pos, n)
    expected = _max_clique_bitset(masks, n, lower_bound)
    got = _bitset_max_clique_py(words, lower_bound)
    # Same DFS order + same prunes: identical incumbent, not merely
    # an equally-sized one.
    assert sorted(int(p) for p in got) == sorted(expected)
    if lower_bound == 0 and n:
        reference = max_clique_reference(adj)
        assert len(got) == len(reference)


@settings(deadline=None, max_examples=25)
@given(small_adjacency(max_n=8),
       st.sampled_from([0.5, 0.6, 0.8, 1.0]),
       st.sampled_from([2, 3]))
def test_quasiclique_bitset_search_matches_set_search(adj, gamma, min_size):
    plain = list(enumerate_quasi_cliques(adj, gamma, min_size,
                                         use_bitset=False))
    bitset = list(enumerate_quasi_cliques(adj, gamma, min_size,
                                          use_bitset=True))
    assert bitset == plain


# ---------------------------------------------------------------------------
# Backend selection plumbing
# ---------------------------------------------------------------------------


def test_config_rejects_unknown_backend():
    from repro.core.config import GThinkerConfig

    with pytest.raises(ValueError):
        GThinkerConfig(kernel_backend="fortran")
    assert GThinkerConfig(kernel_backend="numpy").kernel_backend == "numpy"


def test_env_var_overrides_config_backend(monkeypatch):
    from repro.core.config import GThinkerConfig

    cfg = GThinkerConfig(kernel_backend="numpy")
    monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
    assert cfg.effective_kernel_backend == "numpy"
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "auto")
    assert cfg.effective_kernel_backend == "auto"


def test_explicit_numba_raises_when_missing():
    if "numba" in kernels.available_backends():
        pytest.skip("numba present: nothing to refuse")
    with pytest.raises(kernels.KernelBackendError):
        kernels.select_backend("numba")
    # 'auto' must fall back silently.
    assert kernels.select_backend("auto") == "numpy"


def test_gallop_ratio_follows_backend():
    prior = kernels.current_backend()
    try:
        for name in kernels.available_backends():
            kernels.select_backend(name)
            assert kernels.GALLOP_RATIO == kernels.GALLOP_RATIO_BY_BACKEND[name]
    finally:
        kernels.select_backend(prior)


def test_backend_metric_recorded(tiny_graph):
    from repro.core.job import run_job
    from repro.apps.triangle import TriangleCountComper
    from repro.core.config import GThinkerConfig

    cfg = GThinkerConfig(num_workers=1, compers_per_worker=1,
                         kernel_backend="auto")
    result = run_job(TriangleCountComper, tiny_graph, config=cfg)
    assert result.aggregate == 2
    assert result.kernel_backend in kernels.available_backends()
