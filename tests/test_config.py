"""Tests for configuration and models."""

import pytest

from repro.core.config import (
    DiskModel,
    FailurePlanConfig,
    GThinkerConfig,
    MachineModel,
    NetworkModel,
    parse_host_port,
)


def test_defaults_valid():
    cfg = GThinkerConfig()
    assert cfg.queue_capacity == 3 * cfg.task_batch_size
    assert cfg.refill_target == 2 * cfg.task_batch_size
    assert cfg.effective_pending_threshold == 8 * cfg.task_batch_size


def test_pending_threshold_override():
    cfg = GThinkerConfig(pending_threshold=5)
    assert cfg.effective_pending_threshold == 5


def test_with_updates_returns_copy():
    a = GThinkerConfig(num_workers=2)
    b = a.with_updates(num_workers=4)
    assert a.num_workers == 2
    assert b.num_workers == 4
    assert b.task_batch_size == a.task_batch_size


@pytest.mark.parametrize("field,value", [
    ("num_workers", 0),
    ("compers_per_worker", 0),
    ("task_batch_size", 0),
    ("cache_capacity", 0),
    ("cache_overflow_alpha", -0.1),
    ("cache_buckets", 0),
    ("decompose_threshold", 1),
    ("max_worker_restarts", -1),
    ("worker_restart_backoff_s", -0.1),
    ("control_reply_timeout_s", 0.0),
    ("sync_every_rounds", 0),
    ("steal_batches", 0),
    ("cache_count_delta", 0),
    ("aggregator_sync_period_s", 0.0),
    ("pending_threshold", -1),
    ("cluster_connect_timeout_s", 0.0),
])
def test_invalid_values_rejected(field, value):
    # The message must name the offending field: these errors surface
    # deep inside worker processes, far from the construction site.
    with pytest.raises(ValueError, match=field):
        GThinkerConfig(**{field: value})


def test_steal_batches_unchecked_when_stealing_disabled():
    GThinkerConfig(steal_enabled=False, steal_batches=0)  # does not raise


def test_pending_threshold_zero_allowed():
    # D=0 is maximal gating (any pending task blocks the next pop) and
    # tests rely on it; only negatives are nonsense.
    assert GThinkerConfig(pending_threshold=0).effective_pending_threshold == 0


@pytest.mark.parametrize("field,value", [
    ("sync_every_rounds", -3),
    ("cache_count_delta", -1),
    ("aggregator_sync_period_s", -0.5),
    ("pending_threshold", -2),
])
def test_negative_values_rejected_too(field, value):
    with pytest.raises(ValueError, match=field):
        GThinkerConfig(**{field: value})


# -- cluster wiring ----------------------------------------------------------


@pytest.mark.parametrize("spec,expected", [
    ("127.0.0.1:9090", ("127.0.0.1", 9090)),
    ("nodeA:0", ("nodeA", 0)),
    ("fe80::1:443", ("fe80::1", 443)),  # rpartition keeps IPv6 hosts whole
])
def test_parse_host_port_accepts(spec, expected):
    assert parse_host_port(spec) == expected


@pytest.mark.parametrize("spec", [
    "nohost", ":8080", "host:", "host:http", "host:70000", "host:-1", 8080,
])
def test_parse_host_port_rejects(spec):
    with pytest.raises(ValueError):
        parse_host_port(spec)


def test_cluster_hosts_must_match_num_workers():
    with pytest.raises(ValueError, match="cluster_hosts"):
        GThinkerConfig(num_workers=2, cluster_hosts=("a:1",))


def test_cluster_hosts_entries_validated():
    with pytest.raises(ValueError):
        GThinkerConfig(num_workers=2, cluster_hosts=("a:1", "no-port"))


def test_cluster_hosts_coerced_to_tuple():
    cfg = GThinkerConfig(num_workers=2, cluster_hosts=["a:1", "b:2"])
    assert cfg.cluster_hosts == ("a:1", "b:2")


def test_cluster_bind_validated():
    with pytest.raises(ValueError, match="cluster_bind"):
        GThinkerConfig(cluster_bind="nope")


@pytest.mark.parametrize("kw", [
    dict(kill_worker=0, when="never"),          # unknown event
    dict(when="spawn"),                         # kill_worker required
    dict(kill_worker=-1, when="sync"),          # negative worker id
    dict(kill_worker=0, when="sync", at_count=0),
    dict(kill_worker=0, when="sync", probability=0.0),
    dict(kill_worker=0, when="sync", probability=1.5),
])
def test_invalid_failure_plans_rejected(kw):
    with pytest.raises(ValueError):
        FailurePlanConfig(**kw)


def test_random_failure_plan_needs_no_kill_worker():
    plan = FailurePlanConfig(when="random", probability=0.5, seed=9)
    assert plan.kill_worker is None


def test_failure_plan_worker_id_checked_against_num_workers():
    plan = FailurePlanConfig(kill_worker=5, when="sync")
    with pytest.raises(ValueError):
        GThinkerConfig(num_workers=2, failure_plan=plan)
    GThinkerConfig(num_workers=6, failure_plan=plan)  # in range: fine


def test_network_transfer_time():
    net = NetworkModel(latency_s=0.001, bandwidth_bytes_per_s=1000.0)
    assert net.transfer_time(0) == pytest.approx(0.001)
    assert net.transfer_time(1000) == pytest.approx(1.001)


def test_disk_io_time():
    disk = DiskModel(seek_s=0.002, bandwidth_bytes_per_s=100.0)
    assert disk.io_time(100) == pytest.approx(1.002)


def test_machine_model_defaults():
    m = MachineModel()
    assert m.num_cores == 16
    assert m.memory_bytes == 64 << 30
    assert m.cpu_speed == 1.0


def test_config_frozen():
    cfg = GThinkerConfig()
    with pytest.raises(Exception):
        cfg.num_workers = 9  # dataclass(frozen=True)
