"""End-to-end jobs on the real-thread runtime.

These exercise the actual lock protocols: bucketed cache mutexes, the
concurrent ready buffer, pending-table races between compers and the
comm path, and the double-snapshot termination detector.
"""

import pytest

from repro.algorithms import count_triangles, max_clique_reference, count_matches, triangle_query
from repro.apps import MaxCliqueComper, SubgraphMatchComper, TriangleCountComper
from repro.core import GThinkerConfig, run_job
from repro.graph import erdos_renyi


def cfg(**kw):
    base = dict(
        num_workers=3, compers_per_worker=3, task_batch_size=4,
        cache_capacity=64, cache_buckets=16, decompose_threshold=16,
        aggregator_sync_period_s=0.002,
    )
    base.update(kw)
    return GThinkerConfig(**base)


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(120, 0.08, seed=31)


def test_threaded_triangle_count(graph):
    res = run_job(TriangleCountComper, graph, cfg(), runtime="threaded")
    assert res.aggregate == count_triangles(graph)


def test_threaded_max_clique(graph):
    res = run_job(MaxCliqueComper, graph, cfg(), runtime="threaded")
    assert len(res.aggregate) == len(max_clique_reference(graph))


def test_threaded_matching(graph):
    res = run_job(
        lambda: SubgraphMatchComper(triangle_query()), graph, cfg(),
        runtime="threaded",
    )
    assert res.aggregate == count_triangles(graph)


@pytest.mark.parametrize("round_", range(5))
def test_threaded_repeated_for_races(graph, round_):
    """Repeat runs to shake out interleaving-dependent bugs."""
    res = run_job(TriangleCountComper, graph, cfg(), runtime="threaded")
    assert res.aggregate == count_triangles(graph)


def test_threaded_single_comper(graph):
    res = run_job(
        TriangleCountComper, graph, cfg(num_workers=1, compers_per_worker=1),
        runtime="threaded",
    )
    assert res.aggregate == count_triangles(graph)


def test_threaded_many_compers(graph):
    res = run_job(
        TriangleCountComper, graph, cfg(num_workers=2, compers_per_worker=8),
        runtime="threaded",
    )
    assert res.aggregate == count_triangles(graph)


def test_threaded_tiny_cache_forces_gc(graph):
    res = run_job(
        TriangleCountComper, graph, cfg(cache_capacity=8), runtime="threaded"
    )
    assert res.aggregate == count_triangles(graph)
    assert res.metrics.get("cache:evictions", 0) > 0


def test_threaded_rejects_failure_injection(graph):
    with pytest.raises(ValueError):
        run_job(TriangleCountComper, graph, cfg(), runtime="threaded",
                abort_after_rounds=5)


def test_threaded_user_exception_propagates(graph):
    from repro.core.api import Comper
    from repro.core.errors import TaskError

    class Broken(TriangleCountComper):
        def compute(self, task, frontier):
            raise RuntimeError("boom")

    with pytest.raises(TaskError):
        run_job(Broken, graph, cfg(), runtime="threaded")
