"""Tests for quasi-clique mining."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    enumerate_quasi_cliques,
    is_quasi_clique,
    quasi_cliques_reference,
    two_hop_neighborhood,
)
from repro.graph import Graph, erdos_renyi, ring_of_cliques


def test_clique_is_quasi_clique():
    g = ring_of_cliques(1, 5)
    assert is_quasi_clique(g, [0, 1, 2, 3, 4], 1.0)
    assert is_quasi_clique(g, [0, 1, 2, 3, 4], 0.5)


def test_near_clique():
    # 4-clique minus one edge: each vertex has degree >= 2 of 3.
    g = Graph.from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)])
    assert not is_quasi_clique(g, [0, 1, 2, 3], 1.0)
    assert is_quasi_clique(g, [0, 1, 2, 3], 0.6)


def test_empty_set_not_quasi_clique(tiny_graph):
    assert not is_quasi_clique(tiny_graph, [], 0.5)


def test_two_hop_neighborhood(tiny_graph):
    hood = two_hop_neighborhood(tiny_graph, 0)
    assert hood == {0, 1, 2, 3}
    path = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)])
    assert two_hop_neighborhood(path, 0) == {0, 1, 2}


def test_gamma_one_gives_maximal_cliques():
    g = erdos_renyi(12, 0.4, seed=3)
    from repro.algorithms import enumerate_maximal_cliques

    qcs = set(enumerate_quasi_cliques(g, 1.0, min_size=3))
    cliques = {c for c in enumerate_maximal_cliques(g) if len(c) >= 3}
    # gamma=1 quasi-cliques of size >= 3 are exactly maximal cliques of
    # size >= 3 that are not contained in... a maximal clique < 3 can't
    # contain one >= 3, so the sets match.
    assert qcs == cliques


def test_invalid_parameters():
    g = erdos_renyi(5, 0.5)
    with pytest.raises(ValueError):
        list(enumerate_quasi_cliques(g, 0.0, 3))
    with pytest.raises(ValueError):
        list(enumerate_quasi_cliques(g, 1.5, 3))
    with pytest.raises(ValueError):
        list(enumerate_quasi_cliques(g, 0.5, 1))


# NOTE: quasi-clique enumeration is exponential and its prunes are weak
# for mid gammas, so these integration checks use small graphs on purpose
# (the 80-vertex er_graph fixture takes hours at gamma=0.7).


@pytest.fixture
def small_qc_graph():
    return erdos_renyi(18, 0.3, seed=17)


def test_results_qualify_and_are_maximal(small_qc_graph):
    g = small_qc_graph
    gamma, min_size = 0.7, 4
    got = list(enumerate_quasi_cliques(g, gamma, min_size))
    all_sets = {frozenset(q) for q in got}
    for q in got:
        assert len(q) >= min_size
        assert is_quasi_clique(g, q, gamma)
    # no result contains another
    for a in all_sets:
        for b in all_sets:
            if a != b:
                assert not a < b


def test_min_vertex_restriction(small_qc_graph):
    g = small_qc_graph
    gamma, min_size = 0.7, 4
    unrestricted = set(enumerate_quasi_cliques(g, gamma, min_size))
    union = set()
    for v in g.vertices():
        for q in enumerate_quasi_cliques(
            g, gamma, min_size, restrict_min_vertex=v
        ):
            assert min(q) == v
            union.add(q)
    assert union == unrestricted


def test_matches_bruteforce_reference():
    for seed in range(4):
        g = erdos_renyi(10, 0.45, seed=seed)
        for gamma in (0.5, 0.7, 0.9, 1.0):
            got = set(enumerate_quasi_cliques(g, gamma, min_size=3))
            want = quasi_cliques_reference(g, gamma, min_size=3)
            assert got == want, (seed, gamma)


def test_reference_rejects_big_graphs():
    with pytest.raises(ValueError):
        quasi_cliques_reference(erdos_renyi(20, 0.3), 0.5)


@settings(max_examples=20, deadline=None)
@given(st.integers(4, 10), st.floats(0.2, 0.6), st.integers(0, 30),
       st.sampled_from([0.5, 0.6, 0.8, 1.0]))
def test_property_vs_reference(n, p, seed, gamma):
    g = erdos_renyi(n, p, seed=seed)
    got = set(enumerate_quasi_cliques(g, gamma, min_size=3))
    assert got == quasi_cliques_reference(g, gamma, min_size=3)
