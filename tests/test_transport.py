"""Tests for the message transport."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as hyp_st

from repro.core.config import NetworkModel
from repro.core.metrics import MetricsRegistry
from repro.net import RequestBatch, ResponseBatch, TaskBatchTransfer, Transport


def test_send_and_poll():
    t = Transport(3)
    t.send(RequestBatch(src=0, dst=2, vertex_ids=[1, 2, 3]))
    assert t.poll(1) == []
    msgs = t.poll(2)
    assert len(msgs) == 1
    assert msgs[0].vertex_ids == [1, 2, 3]


def test_in_flight_tracking():
    t = Transport(2)
    assert t.in_flight == 0
    t.send(RequestBatch(src=0, dst=1))
    assert t.in_flight == 1
    t.poll(1)
    assert t.in_flight == 0


def test_invalid_destination():
    t = Transport(2)
    with pytest.raises(ValueError):
        t.send(RequestBatch(src=0, dst=5))


def test_byte_accounting():
    m = MetricsRegistry()
    t = Transport(2, metrics=m)
    t.send(RequestBatch(src=0, dst=1, vertex_ids=[1, 2]))
    t.send(ResponseBatch(src=1, dst=0, vertices=[(1, 0, (5, 6, 7))]))
    assert t.total_messages == 2
    assert t.total_bytes > 8 * 2 + 8 * 3


def test_message_sizes_scale_with_content():
    small = ResponseBatch(src=0, dst=1, vertices=[(1, 0, ())])
    big = ResponseBatch(src=0, dst=1, vertices=[(1, 0, tuple(range(100)))])
    assert big.size_bytes() > small.size_bytes() + 700


def test_task_transfer_size():
    msg = TaskBatchTransfer(src=0, dst=1, payload=b"x" * 100, num_tasks=3)
    assert msg.size_bytes() >= 100


def test_poll_limit():
    t = Transport(2)
    for _ in range(5):
        t.send(RequestBatch(src=0, dst=1))
    assert len(t.poll(1, limit=2)) == 2
    assert len(t.poll(1)) == 3


class TestTimedDelivery:
    def test_message_not_available_before_transfer_time(self):
        net = NetworkModel(latency_s=0.5, bandwidth_bytes_per_s=1e9)
        t = Transport(2, network=net, timed=True)
        t.send(RequestBatch(src=0, dst=1), now=1.0)
        assert t.poll(1, now=1.2) == []
        assert len(t.poll(1, now=1.6)) == 1

    def test_local_messages_immediate(self):
        net = NetworkModel(latency_s=10.0)
        t = Transport(2, network=net, timed=True)
        t.send(RequestBatch(src=1, dst=1), now=0.0)
        assert len(t.poll(1, now=0.0)) == 1

    def test_link_serialization_fifo(self):
        """Two big messages to one worker cannot arrive simultaneously."""
        net = NetworkModel(latency_s=0.0, bandwidth_bytes_per_s=100.0)
        t = Transport(2, network=net, timed=True)
        big = ResponseBatch(src=0, dst=1, vertices=[(1, 0, tuple(range(50)))])
        arrive1 = t.send(big, now=0.0)
        arrive2 = t.send(big, now=0.0)
        assert arrive2 >= 2 * arrive1 - 1e-9

    def test_next_delivery_time(self):
        net = NetworkModel(latency_s=1.0)
        t = Transport(2, network=net, timed=True)
        assert t.next_delivery_time(1) is None
        t.send(RequestBatch(src=0, dst=1), now=0.0)
        assert t.next_delivery_time(1) >= 1.0

    def test_deliver_hook_called(self):
        calls = []
        t = Transport(2, timed=True)
        t.deliver_hook = lambda dst, at: calls.append((dst, at))
        t.send(RequestBatch(src=0, dst=1), now=0.0)
        assert len(calls) == 1
        assert calls[0][0] == 1


def test_untimed_delivers_immediately_regardless_of_now():
    t = Transport(2)
    t.send(RequestBatch(src=0, dst=1), now=123.0)
    assert len(t.poll(1)) == 1


class TestProcessTransportPollLimit:
    """S2 regression: ProcessTransport.poll(limit=N) must honour the
    Transport.poll contract (never more than N messages) even though
    inbox batches are sender-sized, and its received_count must only
    count messages actually handed to the caller."""

    def _pair(self):
        import queue

        queues = [queue.Queue(), queue.Queue()]
        from repro.net.transport import ProcessTransport

        sender = ProcessTransport(1, queues)
        receiver = ProcessTransport(0, queues)
        return sender, receiver

    def test_limit_never_exceeded(self):
        sender, receiver = self._pair()
        for i in range(5):
            sender.send(RequestBatch(src=1, dst=0, vertex_ids=[i]))
        sender.flush_outgoing()  # one 5-message batch on the wire
        first = receiver.poll(0, limit=2)
        assert len(first) == 2
        assert receiver.received_count == 2

    def test_overflow_drains_fifo_and_counts_settle(self):
        sender, receiver = self._pair()
        for i in range(5):
            sender.send(RequestBatch(src=1, dst=0, vertex_ids=[i]))
        sender.flush_outgoing()
        got = receiver.poll(0, limit=2)
        got += receiver.poll(0, limit=2)   # overflow first, still capped
        got += receiver.poll(0)            # unlimited drains the rest
        assert [m.vertex_ids for m in got] == [[i] for i in range(5)]
        assert receiver.received_count == 5 == sender.sent_count

    def test_overflow_served_before_newer_batches(self):
        sender, receiver = self._pair()
        for i in range(3):
            sender.send(RequestBatch(src=1, dst=0, vertex_ids=[i]))
        sender.flush_outgoing()
        assert len(receiver.poll(0, limit=1)) == 1  # 2 parked in overflow
        for i in range(3, 5):
            sender.send(RequestBatch(src=1, dst=0, vertex_ids=[i]))
        sender.flush_outgoing()
        rest = receiver.poll(0)
        assert [m.vertex_ids for m in rest] == [[1], [2], [3], [4]]


class TestProcessTransportFifoProperty:
    """S4 property: across any interleaving of sender flushes and
    limited polls, ProcessTransport delivers messages in FIFO order
    through the overflow-parking boundary, and received_count counts
    exactly the messages handed to the caller — parked overflow is
    invisible until actually delivered."""

    @given(
        batch_sizes=hyp_st.lists(hyp_st.integers(1, 7), min_size=1, max_size=6),
        limits=hyp_st.lists(hyp_st.integers(0, 5), min_size=1, max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_fifo_and_counts_across_overflow(self, batch_sizes, limits):
        import queue

        from repro.net.transport import ProcessTransport

        queues = [queue.Queue(), queue.Queue()]
        sender = ProcessTransport(1, queues)
        receiver = ProcessTransport(0, queues)
        seq = 0
        delivered = []
        limit_iter = iter(limits)
        for size in batch_sizes:
            for _ in range(size):
                sender.send(RequestBatch(src=1, dst=0, vertex_ids=[seq]))
                seq += 1
            sender.flush_outgoing()
            # Interleave a limited poll after each batch: the overflow
            # deque now holds a mix of parked older messages and a
            # freshly decoded batch.
            limit = next(limit_iter, 0)
            got = receiver.poll(0, limit=limit)
            if limit:
                assert len(got) <= limit
            delivered.extend(got)
            assert receiver.received_count == len(delivered)
        while True:
            got = receiver.poll(0)
            if not got:
                break
            delivered.extend(got)
        assert [m.vertex_ids[0] for m in delivered] == list(range(seq))
        assert receiver.received_count == seq == sender.sent_count
