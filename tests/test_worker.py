"""Tests for the Worker component (local table, spawning, stealing)."""

import pytest

from repro.core.api import Comper, Task, VertexView
from repro.core.config import GThinkerConfig
from repro.core.containers import deserialize_tasks
from repro.core.job import build_cluster
from repro.core.worker import AtomicCounter, CostMeter
from repro.graph import erdos_renyi, hash_partition


class SpawnEverything(Comper):
    """Creates one trivial task per vertex (for worker-level tests)."""

    def task_spawn(self, v: VertexView) -> None:
        self.add_task(Task(context=v.id))

    def compute(self, task, frontier):
        return False


@pytest.fixture
def cluster(small_config, er_graph):
    return build_cluster(SpawnEverything, er_graph, small_config)


def test_graph_partitioned_across_workers(cluster, er_graph):
    total = sum(w.num_local_vertices for w in cluster.workers)
    assert total == er_graph.num_vertices
    for w in cluster.workers:
        for v in range(er_graph.num_vertices):
            if w.owns_vertex(v):
                assert w.local_view(v) is not None


def test_local_view_for_remote_vertex_is_none(cluster):
    w = cluster.workers[0]
    remote = next(
        v for v in range(1000) if hash_partition(v, len(cluster.workers)) != 0
    )
    assert w.local_view(remote) is None


def test_local_entry_unknown_vertex_raises(cluster):
    w = cluster.workers[0]
    with pytest.raises(KeyError):
        w.local_entry(10**9)


def test_spawn_into_respects_room(cluster):
    w = cluster.workers[0]
    engine = w.engines[0]
    before = w.unspawned_count()
    spawned = w.spawn_into(engine, room=engine.q_task.refill_room())
    assert spawned > 0
    assert w.unspawned_count() == before - spawned
    assert len(engine.q_task) > 0


def test_spawn_cursor_exhaustion(cluster):
    w = cluster.workers[0]
    engine = w.engines[0]
    while w.unspawned_count():
        w.spawn_into(engine, room=10**6)
        # drain so the queue never blocks the refill loop
        while engine.q_task.pop() is not None:
            pass
    assert w.spawn_into(engine, room=10) == 0


def test_spawn_batch_payload_for_stealing(cluster):
    w = cluster.workers[0]
    payload_info = w.spawn_batch_payload(max_tasks=5)
    assert payload_info is not None
    payload, count = payload_info
    tasks = deserialize_tasks(payload)
    assert len(tasks) == count <= 5
    # Spawned-for-steal tasks come off the same shared cursor.
    assert w.unspawned_count() < w.num_local_vertices


def test_spawn_batch_payload_empty_when_exhausted(cluster):
    w = cluster.workers[0]
    w.set_spawn_cursor(w.num_local_vertices)
    assert w.spawn_batch_payload(5) is None


def test_remaining_workload_estimate(cluster):
    w = cluster.workers[0]
    est = w.remaining_workload_estimate()
    assert est == w.unspawned_count()
    w.l_file.spill([Task(), Task()])
    assert w.remaining_workload_estimate() == est + 2
    w.l_file.cleanup()


def test_outputs_collected(cluster):
    w = cluster.workers[0]
    w.add_output("a")
    w.add_output("b")
    assert w.outputs() == ["a", "b"]
    w.set_outputs(["x"])
    assert w.outputs() == ["x"]


def test_engine_routing_by_global_id(cluster, small_config):
    for w in cluster.workers:
        base = w.worker_id * small_config.compers_per_worker
        for i, engine in enumerate(w.engines):
            assert engine.global_id == base + i
            assert w.engine_by_global_id(base + i) is engine
        with pytest.raises(KeyError):
            w.engine_by_global_id(base + len(w.engines))


def test_trimmer_applied_at_load(small_config):
    from repro.apps import TriangleCountComper

    g = erdos_renyi(30, 0.3, seed=2)
    cluster = build_cluster(TriangleCountComper, g, small_config)
    for w in cluster.workers:
        for v in g.vertices():
            view = w.local_view(v) if w.owns_vertex(v) else None
            if view is not None:
                assert all(u > v for u in view.adj)  # Γ_> trimming


def test_atomic_counter_threadsafe():
    import threading

    c = AtomicCounter()

    def bump():
        for _ in range(10_000):
            c.increment()

    threads = [threading.Thread(target=bump) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value == 40_000


def test_cost_meter_drain():
    m = CostMeter()
    m.add(0.5)
    m.add(0.25)
    assert m.drain() == pytest.approx(0.75)
    assert m.drain() == 0.0


def test_gc_step_only_on_overflow(cluster):
    w = cluster.workers[0]
    assert w.gc_step() is False  # empty cache: nothing to do
