"""Tests for the user-facing API primitives."""

import pickle

import pytest

from repro.core.api import (
    MaxAggregator,
    SumAggregator,
    Task,
    Trimmer,
    VertexView,
)


class TestTask:
    def test_pull_dedup(self):
        t = Task()
        t.pull(3)
        t.pull(5)
        t.pull(3)
        assert t.pending_pulls() == (3, 5)

    def test_take_pulls_drains(self):
        t = Task()
        t.pull(1)
        assert t.take_pulls() == [1]
        assert t.pending_pulls() == ()
        t.pull(1)  # re-pull after drain is allowed
        assert t.take_pulls() == [1]

    def test_pull_order_preserved(self):
        t = Task()
        for v in (9, 2, 7, 2, 9, 1):
            t.pull(v)
        assert t.take_pulls() == [9, 2, 7, 1]

    def test_context(self):
        t = Task(context={"S": (1, 2)})
        assert t.context["S"] == (1, 2)

    def test_default_id_unassigned(self):
        assert Task().task_id == -1

    def test_pickle_roundtrip(self):
        t = Task(context=(1, 2))
        t.g.add_vertex(5, (6, 7))
        t.pull(6)
        back = pickle.loads(pickle.dumps(t))
        assert back.context == (1, 2)
        assert back.g.neighbors(5) == (6, 7)
        assert back.pending_pulls() == (6,)

    def test_memory_estimate(self):
        t = Task()
        base = t.memory_estimate_bytes()
        t.g.add_vertex(0, tuple(range(50)))
        assert t.memory_estimate_bytes() > base


class TestAggregators:
    def test_sum(self):
        a = SumAggregator()
        assert a.identity() == 0
        assert a.combine(2, 3) == 5

    def test_max_by_len(self):
        a = MaxAggregator(key=len)
        assert a.identity() is None
        assert a.combine(None, (1,)) == (1,)
        assert a.combine((1, 2), None) == (1, 2)
        assert a.combine((1,), (1, 2)) == (1, 2)
        assert a.combine((3, 4), (1, 2)) == (3, 4)  # ties keep the left

    def test_max_custom_key(self):
        a = MaxAggregator(key=abs)
        assert a.combine(-5, 3) == -5


def test_default_trimmer_is_identity():
    t = Trimmer()
    assert t.trim(0, 0, (1, 2, 3)) == (1, 2, 3)


def test_vertex_view_fields():
    v = VertexView(3, 1, (4, 5))
    assert v.id == 3 and v.label == 1 and v.adj == (4, 5)
