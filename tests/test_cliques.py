"""Tests for the serial clique miners against independent oracles."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    enumerate_maximal_cliques,
    greedy_coloring_bound,
    max_clique,
    max_clique_reference,
)
from repro.graph import Graph, erdos_renyi, plant_clique, ring_of_cliques

from tests.oracles import nx_of


def test_max_clique_tiny(tiny_graph):
    assert max_clique(tiny_graph) == (0, 1, 2) or len(max_clique(tiny_graph)) == 3


def test_max_clique_is_a_clique(er_graph):
    clique = max_clique(er_graph)
    for i, u in enumerate(clique):
        for v in clique[i + 1:]:
            assert er_graph.has_edge(u, v)


def test_max_clique_matches_networkx(er_graph):
    import networkx as nx

    ref = max(nx.find_cliques(nx_of(er_graph)), key=len)
    assert len(max_clique(er_graph)) == len(ref)


def test_max_clique_empty_graph():
    assert max_clique(Graph()) == ()


def test_max_clique_edgeless():
    g = Graph.from_edges([], extra_vertices=[1, 2, 3])
    assert len(max_clique(g)) == 1


def test_max_clique_ring(clique_ring):
    assert len(max_clique(clique_ring)) == 6


def test_lower_bound_prunes():
    """With lower_bound >= answer the search returns empty."""
    g = ring_of_cliques(3, 4)
    assert max_clique(g, lower_bound=4) == ()
    assert max_clique(g, lower_bound=5) == ()
    assert len(max_clique(g, lower_bound=3)) == 4


def test_planted_clique_found():
    g = erdos_renyi(80, 0.05, seed=11)
    g2, members = plant_clique(g, 9, seed=12)
    assert len(max_clique(g2)) == 9


def test_greedy_coloring_bound_valid(er_graph):
    adj = er_graph.adjacency()
    verts = list(adj)
    bound = greedy_coloring_bound(verts, adj)
    assert bound >= len(max_clique(er_graph))


def test_bron_kerbosch_matches_networkx(er_graph):
    import networkx as nx

    ours = {c for c in enumerate_maximal_cliques(er_graph)}
    theirs = {tuple(sorted(c)) for c in nx.find_cliques(nx_of(er_graph))}
    assert ours == theirs


def test_reference_agrees_with_bnb(er_graph):
    assert len(max_clique_reference(er_graph)) == len(max_clique(er_graph))


def test_accepts_plain_adjacency_mapping():
    adj = {0: (1, 2), 1: (0, 2), 2: (0, 1), 3: ()}
    assert set(max_clique(adj)) == {0, 1, 2}


@settings(max_examples=40, deadline=None)
@given(st.integers(3, 30), st.floats(0.05, 0.7), st.integers(0, 100))
def test_max_clique_property_vs_networkx(n, p, seed):
    import networkx as nx

    g = erdos_renyi(n, p, seed=seed)
    ref = max(nx.find_cliques(nx_of(g)), key=len)
    ours = max_clique(g)
    assert len(ours) == len(ref)
    # And the returned set really is a clique.
    for i, u in enumerate(ours):
        for v in ours[i + 1:]:
            assert g.has_edge(u, v)


@settings(max_examples=25, deadline=None)
@given(st.integers(3, 20), st.floats(0.1, 0.6), st.integers(0, 50), st.integers(0, 6))
def test_lower_bound_never_loses_better_answer(n, p, seed, bound):
    g = erdos_renyi(n, p, seed=seed)
    true_size = len(max_clique(g))
    found = max_clique(g, lower_bound=bound)
    if bound < true_size:
        assert len(found) == true_size
    else:
        assert found == ()
