"""Tests for the baseline-system reimplementations."""

import pytest

from repro.algorithms import count_matches, count_triangles, max_clique_reference
from repro.baselines import (
    CostModel,
    DESIRABILITIES,
    FEATURE_MATRIX,
    arabesque_max_clique,
    arabesque_triangle_count,
    feature_rows,
    giraph_max_clique,
    giraph_triangle_count,
    gminer_max_clique,
    gminer_subgraph_match,
    gminer_triangle_count,
    lsh_signature,
    nuri_max_clique,
    rstream_disk_demand,
    rstream_triangle_count,
)
from repro.bench import gm_query
from repro.graph import erdos_renyi, make_dataset, with_random_labels


@pytest.fixture(scope="module")
def graph():
    return make_dataset("youtube", scale=0.25)


@pytest.fixture(scope="module")
def oracle(graph):
    return {"tri": count_triangles(graph), "mc": len(max_clique_reference(graph))}


class TestCostModel:
    def test_parallel_cpu_divides(self):
        c = CostModel(machines=4, threads=4)
        c.charge_parallel_cpu(16.0)
        assert c.total_time_s() == pytest.approx(1.0)

    def test_serial_cpu_does_not_divide(self):
        c = CostModel(machines=4, threads=4)
        c.charge_serial_cpu(2.0)
        assert c.total_time_s() >= 2.0

    def test_network_and_disk_terms(self):
        c = CostModel()
        c.charge_network(c.network.bandwidth_bytes_per_s, rounds=0)
        c.charge_disk(c.disk.bandwidth_bytes_per_s, ios=0)
        assert c.total_time_s() == pytest.approx(2.0)

    def test_memory_budget(self):
        c = CostModel(memory_budget_bytes=100)
        c.observe_memory(50)
        assert not c.memory_exceeded()
        c.observe_memory(150)
        assert c.memory_exceeded()
        assert c.peak_memory_bytes == 150

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            CostModel(machines=0)


class TestGiraph:
    def test_tc_correct(self, graph, oracle):
        r = giraph_triangle_count(graph, machines=3, threads=2)
        assert r.ok and r.answer == oracle["tri"]

    def test_mcf_correct(self, graph, oracle):
        r = giraph_max_clique(graph, machines=3, threads=2)
        assert r.ok and len(r.answer) == oracle["mc"]

    def test_message_volume_quadratic_in_degree(self, graph):
        r = giraph_triangle_count(graph, machines=2)
        gt_sq = sum(
            len(graph.neighbors_gt(v)) ** 2 for v in graph.vertices()
        )
        # each Γ_> list goes to each larger neighbor: ~8 bytes/entry
        assert r.detail["network_bytes"] >= 4 * gt_sq

    def test_oom_with_small_budget(self, graph):
        r = giraph_triangle_count(graph, machines=1, memory_budget_bytes=1000)
        assert r.failed == "out of memory"
        assert r.answer is None

    def test_single_machine_no_network_charge(self, graph):
        r = giraph_triangle_count(graph, machines=1)
        assert r.detail["network_bytes"] == 0


class TestArabesque:
    def test_tc_correct(self, graph, oracle):
        r = arabesque_triangle_count(graph, machines=2, threads=2)
        assert r.ok and r.answer == oracle["tri"]

    def test_mcf_correct(self, graph, oracle):
        r = arabesque_max_clique(graph, machines=2, threads=2)
        assert r.ok and len(r.answer) == oracle["mc"]

    def test_materialization_blows_memory_on_big_cliques(self):
        g = make_dataset("orkut", scale=0.5)
        r = arabesque_max_clique(g, machines=2, memory_budget_bytes=1 << 20,
                                 embedding_cap=200_000)
        assert r.failed == "out of memory"

    def test_embedding_cap_reports_oom(self):
        g = make_dataset("orkut", scale=0.5)
        r = arabesque_max_clique(g, machines=2, embedding_cap=1000)
        assert r.failed == "out of memory"

    def test_memory_grows_with_level_width(self, graph):
        r = arabesque_triangle_count(graph, machines=1)
        assert r.peak_memory_bytes > graph.memory_estimate_bytes()


class TestGMiner:
    def test_tc_correct(self, graph, oracle):
        r = gminer_triangle_count(graph, machines=3, threads=2)
        assert r.ok and r.answer == oracle["tri"]

    def test_mcf_correct(self, graph, oracle):
        r = gminer_max_clique(graph, machines=3, threads=2)
        assert r.ok and len(r.answer) == oracle["mc"]

    def test_gm_correct(self):
        g = make_dataset("youtube", scale=0.2, labeled=3)
        q = gm_query()
        r = gminer_subgraph_match(g, q, machines=2, threads=2)
        assert r.ok and r.answer == count_matches(g, q)

    def test_disk_traffic_dominates(self, graph):
        """The disk-resident queue writes every task at least twice."""
        r = gminer_triangle_count(graph, machines=1)
        assert r.detail["disk_bytes"] > 0

    def test_lsh_signature_similarity(self):
        a = lsh_signature(tuple(range(100)))
        b = lsh_signature(tuple(range(100)))
        c = lsh_signature(tuple(range(5000, 5100)))
        assert a == b
        assert a != c
        assert lsh_signature(()) == (0, 0, 0, 0)

    def test_makespan_bounded_by_largest_task(self):
        """No decomposition: the hub task lower-bounds the makespan even
        with many machines/threads (the BTC failure mode)."""
        g = make_dataset("btc", scale=0.3)
        few = gminer_max_clique(g, machines=1, threads=1)
        many = gminer_max_clique(g, machines=16, threads=16)
        assert many.virtual_time_s >= 0.5 * (few.virtual_time_s / 300)
        assert many.ok


class TestRStream:
    def test_tc_correct(self, graph, oracle):
        r = rstream_triangle_count(graph)
        assert r.ok and r.answer == oracle["tri"]

    def test_partitions_sweep_same_answer(self, graph, oracle):
        for parts in (1, 2, 8):
            assert rstream_triangle_count(graph, partitions=parts).answer == oracle["tri"]

    def test_more_partitions_more_disk(self, graph):
        few = rstream_triangle_count(graph, partitions=1)
        many = rstream_triangle_count(graph, partitions=8)
        assert many.detail["disk_bytes"] > few.detail["disk_bytes"]

    def test_disk_budget_failure(self, graph):
        demand = rstream_disk_demand(graph)
        r = rstream_triangle_count(graph, disk_budget_bytes=demand // 2)
        assert r.failed == "used up all disk space"

    def test_rejects_bad_partitions(self, graph):
        with pytest.raises(ValueError):
            rstream_triangle_count(graph, partitions=0)


class TestNuri:
    def test_mcf_correct(self, graph, oracle):
        r = nuri_max_clique(graph)
        assert r.ok and len(r.answer) == oracle["mc"]

    def test_single_threaded_serial_time(self, graph):
        r = nuri_max_clique(graph)
        assert r.detail["serial_cpu_s"] > 0
        assert r.detail["parallel_cpu_s"] == 0

    def test_state_cap_failure(self, graph):
        r = nuri_max_clique(graph, max_states=1)
        assert r.failed is not None

    def test_best_first_on_planted(self):
        from repro.graph import plant_clique

        g, members = plant_clique(erdos_renyi(50, 0.08, seed=3), 8)
        r = nuri_max_clique(g)
        assert len(r.answer) == 8


class TestFeatureMatrix:
    def test_seven_desirabilities(self):
        assert len(DESIRABILITIES) == 7

    def test_gthinker_has_all(self):
        assert all(FEATURE_MATRIX["gthinker"].values())

    def test_every_system_scored_on_every_row(self):
        for system, feats in FEATURE_MATRIX.items():
            assert set(feats) == {d for d, _ in DESIRABILITIES}

    def test_rows_render(self):
        rows = feature_rows()
        assert len(rows) == len(FEATURE_MATRIX)
        assert all(len(marks) == 7 for _s, marks in rows)


class TestNScale:
    @pytest.fixture(scope="class")
    def nscale_runs(self, graph):
        from repro.baselines import nscale_max_clique, nscale_triangle_count

        return (
            nscale_triangle_count(graph, machines=3, threads=2),
            nscale_max_clique(graph, machines=3, threads=2),
        )

    def test_tc_correct(self, nscale_runs, oracle):
        tc, _ = nscale_runs
        assert tc.ok and tc.answer == oracle["tri"]

    def test_mcf_correct(self, nscale_runs, oracle):
        _, mcf = nscale_runs
        assert mcf.ok and len(mcf.answer) == oracle["mc"]

    def test_phase_breakdown_recorded(self, nscale_runs):
        tc, mcf = nscale_runs
        for r in (tc, mcf):
            assert r.detail["materialize_cpu_s"] > 0
            assert r.detail["mine_cpu_s"] > 0
            assert r.detail["materialize_net_bytes"] > 0

    def test_materialization_memory_scales_with_subgraphs(self, graph):
        from repro.baselines import nscale_triangle_count

        one = nscale_triangle_count(graph, machines=1)
        four = nscale_triangle_count(graph, machines=4)
        assert one.peak_memory_bytes > four.peak_memory_bytes

    def test_oom_with_small_budget(self, graph):
        from repro.baselines import nscale_triangle_count

        r = nscale_triangle_count(graph, machines=1, memory_budget_bytes=100)
        assert r.failed == "out of memory"
        assert r.answer is None
