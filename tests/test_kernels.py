"""Tests for the vectorized sorted-array kernels and the zero-copy
adjacency contract (ndarray views into ``SharedCSR`` / the vertex cache).
"""

import numpy as np
import pytest

from repro.apps.common import GtTrimmer
from repro.core.vertex_cache import RequestOutcome, VertexCache
from repro.graph import Graph, SharedCSR, erdos_renyi, kernels
from repro.graph.graph import (
    adjacency_suffix_gt,
    intersect_sorted,
    intersect_sorted_count,
)

@pytest.fixture(autouse=True, params=kernels.available_backends())
def kernel_backend(request):
    """Re-run every test in this module under each importable backend.

    On a box without numba the params collapse to ``("numpy",)``; in the
    CI scaling-smoke job (numba installed) the whole module runs twice
    and any compiled/numpy divergence fails the matching test directly.
    """
    prior = kernels.current_backend()
    kernels.select_backend(request.param)
    yield request.param
    kernels.select_backend(prior)


# ---------------------------------------------------------------------------
# Randomized equivalence against the pure-Python oracles
# ---------------------------------------------------------------------------

#: (max_value, size_a, size_b) regimes: balanced, skewed 1:100 both ways,
#: empty-on-either-side, identical universes, tiny, and dense overlap.
_REGIMES = [
    (1_000, 50, 50),
    (1_000, 3, 300),       # heavy skew: gallop path
    (1_000, 300, 3),
    (10_000, 0, 40),       # empty a
    (10_000, 40, 0),       # empty b
    (50, 30, 30),          # dense: most values shared
    (10**9, 100, 100),     # sparse: mostly disjoint, huge ids
    (8, 4, 4),             # tiny universe
]


def _sorted_unique(rng, max_value, size):
    if size == 0:
        return np.empty(0, dtype=np.int64)
    vals = rng.integers(0, max_value, size=size, dtype=np.int64)
    return np.unique(vals)


def _cases():
    rng = np.random.default_rng(0xC0FFEE)
    for regime, (max_value, na, nb) in enumerate(_REGIMES):
        for rep in range(25):
            a = _sorted_unique(rng, max_value, na)
            b = _sorted_unique(rng, max_value, nb)
            yield regime * 25 + rep, a, b


def test_intersect_matches_oracle_randomized():
    """~200 seeded random cases across all size/skew regimes."""
    ran = 0
    for _case, a, b in _cases():
        expected = intersect_sorted(a.tolist(), b.tolist())
        got = kernels.intersect(a, b)
        assert got.tolist() == expected, (a, b)
        assert got.dtype == np.int64
        ran += 1
    assert ran == 25 * len(_REGIMES)


def test_intersect_count_matches_oracle_randomized():
    for _case, a, b in _cases():
        expected = intersect_sorted_count(a.tolist(), b.tolist())
        assert kernels.intersect_count(a, b) == expected, (a, b)


def test_both_strategies_agree():
    """The gallop and merge variants are interchangeable."""
    rng = np.random.default_rng(7)
    for _ in range(50):
        a = _sorted_unique(rng, 500, int(rng.integers(0, 60)))
        b = _sorted_unique(rng, 500, int(rng.integers(0, 60)))
        g = kernels.intersect_gallop(a, b).tolist()
        m = kernels.intersect_merge(a, b).tolist()
        assert g == m == intersect_sorted(a.tolist(), b.tolist())


def test_intersect_identical_and_disjoint():
    a = np.arange(0, 100, 2, dtype=np.int64)
    assert kernels.intersect(a, a).tolist() == a.tolist()
    assert kernels.intersect_count(a, a) == a.size
    b = a + 1  # all odd: disjoint
    assert kernels.intersect(a, b).size == 0
    assert kernels.intersect_count(a, b) == 0


def test_intersect_accepts_tuples():
    assert kernels.intersect((1, 3, 5), (3, 4, 5)).tolist() == [3, 5]
    assert kernels.intersect_count((1, 3, 5), (3, 4, 5)) == 2


def test_intersect_many_matches_pairwise_oracle():
    rng = np.random.default_rng(99)
    for _ in range(40):
        arrays = [
            _sorted_unique(rng, 200, int(rng.integers(0, 50)))
            for _ in range(int(rng.integers(1, 5)))
        ]
        expected = arrays[0].tolist()
        for nxt in arrays[1:]:
            expected = intersect_sorted(expected, nxt.tolist())
        assert kernels.intersect_many(arrays).tolist() == expected


def test_intersect_many_empty_input():
    assert kernels.intersect_many([]).size == 0
    assert kernels.intersect_many(iter([])).size == 0


def test_suffix_gt_matches_oracle():
    rng = np.random.default_rng(11)
    for _ in range(40):
        a = _sorted_unique(rng, 100, int(rng.integers(0, 40)))
        pivots = [-1, 0, 50, 99, 100]
        if a.size:
            pivots.extend((int(a[0]), int(a[-1]), int(a[a.size // 2])))
        for v in pivots:
            assert kernels.suffix_gt(a, v).tolist() == \
                list(adjacency_suffix_gt(a.tolist(), v))


def test_suffix_gt_is_a_view():
    a = np.arange(10, dtype=np.int64)
    out = kernels.suffix_gt(a, 4)
    assert out.tolist() == [5, 6, 7, 8, 9]
    assert np.shares_memory(out, a)


def test_as_ids_array_passthrough_and_convert():
    a = np.arange(5, dtype=np.int64)
    assert kernels.as_ids_array(a) is a  # no copy for int64 input
    t = kernels.as_ids_array((3, 1, 2))
    assert t.dtype == np.int64 and t.tolist() == [3, 1, 2]


# ---------------------------------------------------------------------------
# Zero-copy storage contract
# ---------------------------------------------------------------------------


@pytest.fixture
def shared(er_graph):
    csr = SharedCSR.from_graph(er_graph)
    yield er_graph, csr
    csr.close()
    csr.unlink()


def test_shared_entry_is_zero_copy_view(shared):
    g, csr = shared
    for v in list(g.vertices())[:20]:
        _label, adj = csr.entry(v)
        if len(adj) == 0:
            continue
        assert isinstance(adj, np.ndarray)
        assert np.shares_memory(adj, csr.indices)
        assert not adj.flags.writeable


def test_trimmed_shared_entry_stays_zero_copy(shared):
    """GtTrimmer returns a *slice* of the SharedCSR row: still shared."""
    g, csr = shared
    trimmer = GtTrimmer()
    for v in list(g.vertices())[:20]:
        label, adj = csr.entry(v)
        trimmed = trimmer.trim(v, label, adj)
        if len(trimmed) == 0:
            continue
        assert np.shares_memory(trimmed, csr.indices)
        assert trimmed.tolist() == [u for u in g.neighbors(v) if u > v]


def test_graph_neighbors_array_cached_and_readonly(er_graph):
    v = next(iter(er_graph.vertices()))
    arr = er_graph.neighbors_array(v)
    assert arr is er_graph.neighbors_array(v)  # memoized
    assert not arr.flags.writeable
    assert arr.tolist() == list(er_graph.neighbors(v))


def test_cache_eviction_never_invalidates_held_view():
    """A task holding a frontier ndarray survives eviction of the entry:
    the view keeps the buffer referenced (VertexView contract)."""
    c = VertexCache(num_buckets=4, capacity=4, overflow_alpha=0.0,
                    count_delta=1)
    row = np.arange(100, 200, dtype=np.int64)
    c.request(7, task_id=1)
    c.insert_response(7, 0, row)
    out = c.request(7, task_id=2)
    assert out.status == RequestOutcome.HIT
    held = out.entry.adj
    assert isinstance(held, np.ndarray)
    c.release(7)
    c.release(7)
    assert c.evict(10) >= 1  # the entry is gone from the cache...
    assert c.request(7, task_id=3).status == RequestOutcome.MISS_SEND
    assert held.tolist() == list(range(100, 200))  # ...the view is not


def test_cache_entry_memory_estimate_counts_real_nbytes():
    c = VertexCache(num_buckets=4, capacity=64, overflow_alpha=0.2,
                    count_delta=1)
    row = np.arange(50, dtype=np.int64)
    c.request(3, task_id=1)
    c.insert_response(3, 0, row)
    entry = c.get_locked(3)
    assert entry.memory_estimate_bytes() == 64 + row.nbytes


def test_worker_local_table_shares_csr_memory(er_graph, tmp_path):
    """The process backend's T_local faults rows in as SharedCSR views."""
    from repro.core.config import GThinkerConfig
    from repro.core.metrics import MetricsRegistry
    from repro.core.worker import Worker
    from repro.net import Transport

    csr = SharedCSR.from_graph(er_graph)
    try:
        cfg = GThinkerConfig(num_workers=1, compers_per_worker=1)
        from repro.apps.triangle import TriangleCountComper

        worker = Worker(
            worker_id=0, num_workers=1, config=cfg,
            app_factory=TriangleCountComper,
            transport=Transport(1), metrics=MetricsRegistry(),
            spill_dir=tmp_path,
        )
        worker.load_shared(csr)
        hub = max(er_graph.vertices(), key=er_graph.degree)
        _label, adj = worker.local_entry(hub)
        assert isinstance(adj, np.ndarray)
        gt = [u for u in er_graph.neighbors(hub) if u > hub]
        assert adj.tolist() == gt  # GtTrimmer applied
        if len(adj):
            assert np.shares_memory(adj, csr.indices)
    finally:
        csr.close()
        csr.unlink()
