"""Every example script must run to completion (they self-assert)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))

# cluster_simulation sweeps several simulated configs and is slow-ish;
# cap generously so CI flakiness does not bite.
TIMEOUTS = {"cluster_simulation.py": 600, "maximum_clique.py": 600}


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=TIMEOUTS.get(script.name, 300),
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script.name} produced no output"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable's minimum
