"""The resident-graph job service: wire protocol, admission, fairness.

End-to-end over real localhost sockets: concurrent submitters get the
same answers as serial oracles, a repeated submission is served from the
result cache with *zero* mining rounds, per-job quotas bound concurrent
worker use, the stride scheduler keeps a backlogged tenant from starving
a light one, and a full admission queue rejects loudly.
"""

from __future__ import annotations

import functools
import threading
import time

import pytest

from repro import GThinkerConfig
from repro.algorithms import count_triangles, max_clique_reference
from repro.algorithms.matching import count_matches, triangle_query
from repro.apps import TriangleCountComper
from repro.core.api import Comper, SumAggregator, Task
from repro.core.errors import JobCancelledError, JobRejectedError, ServiceError
from repro.graph import erdos_renyi, graph_digest, with_random_labels
from repro.service import (
    GraphService,
    JobSpec,
    ResultCache,
    ServiceClient,
    cache_key,
    canonical_params,
    register_service_app,
)

TRIANGLE_EDGES = [[0, 1], [1, 2], [0, 2]]


def cfg(**kw):
    base = dict(num_workers=2, compers_per_worker=2, task_batch_size=4)
    base.update(kw)
    return GThinkerConfig(**base)


@pytest.fixture(scope="module")
def graph():
    return with_random_labels(erdos_renyi(90, 0.1, seed=23), num_labels=3,
                              seed=5)


@pytest.fixture(scope="module")
def oracles(graph):
    return {
        "tc": count_triangles(graph),
        "mcf": len(max_clique_reference(graph)),
        "gm": count_matches(graph, triangle_query()),
    }


@pytest.fixture
def service(graph):
    with GraphService(graph, config=cfg(), runtime="threaded",
                      worker_budget=4) as svc:
        yield svc


@pytest.fixture
def client(service):
    host, port = service.address
    with ServiceClient(f"{host}:{port}") as c:
        yield c


# -- a deterministic blocking app for scheduler tests -------------------

_STARTED = threading.Event()
_RELEASE = threading.Event()


def _block_builder(params):
    def factory():
        _STARTED.set()
        if not _RELEASE.wait(30):  # pragma: no cover - hung test guard
            raise RuntimeError("blocking app never released")
        return TriangleCountComper()

    return factory


register_service_app(
    "block", _block_builder,
    description="test-only: holds its worker quota until released",
    defaults={"id": 0},
)


def _fail_builder(params):
    def factory():
        raise RuntimeError("kaboom at mining time")

    return factory


register_service_app(
    "fail", _fail_builder,
    description="test-only: passes admission, explodes at run time",
)


@pytest.fixture
def gate():
    """Arms the 'block' app; yields (wait_started, release)."""
    _STARTED.clear()
    _RELEASE.clear()
    yield (lambda: _STARTED.wait(10)), _RELEASE.set
    _RELEASE.set()  # never leave a runner thread hanging


# -- a slow, steadily-syncing app for cancellation tests -----------------


class _ServiceSlowComper(Comper):
    """Long steady mining with frequent sync boundaries.

    Module level (and built via :func:`functools.partial`) so the
    ``process`` runtime can pickle the factory.
    """

    def __init__(self, iters: int = 2000, delay: float = 0.002) -> None:
        super().__init__()
        self.iters = iters
        self.delay = delay

    def task_spawn(self, v) -> None:
        if v.id < 4:
            t = Task(context=0)
            t.pull(v.id)
            self.add_task(t)

    def compute(self, task, frontier) -> bool:
        time.sleep(self.delay)
        task.context += 1
        if task.context >= self.iters:
            self.aggregate(1)
            return False
        task.pull(frontier[0].id)
        return True

    def make_aggregator(self):
        return SumAggregator()


def _slow_builder(params):
    return functools.partial(_ServiceSlowComper,
                             int(params.get("iters", 2000)),
                             float(params.get("delay", 0.002)))


register_service_app(
    "slow", _slow_builder,
    description="test-only: mines slowly across many sync boundaries",
    defaults={"iters": 2000, "delay": 0.002, "id": 0},
)


def slow_cfg(**kw):
    # Tiny sync cadence + tiny inline budget: abort checks come fast.
    base = dict(num_workers=2, compers_per_worker=1, sync_every_rounds=2,
                inline_iteration_limit=2)
    base.update(kw)
    return GThinkerConfig(**base)


def _wait_status(svc, job_id, status, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if svc.status(job_id)["status"] == status:
            return True
        time.sleep(0.01)
    return False


# -- end-to-end over the socket -----------------------------------------


class TestEndToEnd:
    def test_hello_reports_graph_and_limits(self, graph, client):
        info = client.server_info()
        assert info["graph_digest"] == graph_digest(graph)
        assert info["num_vertices"] == graph.num_vertices
        assert {"tc", "mcf", "cliques", "qc", "gm"} <= set(info["apps"])
        assert info["worker_budget"] == 4

    def test_concurrent_submitters_match_oracles(self, service, oracles):
        """N client threads × (tc, mcf, gm) — every answer equals its
        serial oracle even while the jobs interleave."""
        host, port = service.address
        answers, failures = {}, []

        def submitter(name, app, params):
            try:
                with ServiceClient(f"{host}:{port}") as c:
                    handle = c.submit(app, params, tenant=name)
                    answers[(name, app)] = handle.result(timeout=120)
            except BaseException as exc:  # noqa: BLE001 - recorded for assert
                failures.append((name, app, exc))

        jobs = [("alice", "tc", {}), ("bob", "mcf", {}),
                ("carol", "gm", {"query_edges": TRIANGLE_EDGES}),
                ("dave", "tc", {"bundle": 8})]
        threads = [threading.Thread(target=submitter, args=j) for j in jobs]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=180)
        assert not failures, failures
        assert answers[("alice", "tc")].aggregate == oracles["tc"]
        assert answers[("dave", "tc")].aggregate == oracles["tc"]
        assert len(answers[("bob", "mcf")].aggregate) == oracles["mcf"]
        assert answers[("carol", "gm")].aggregate == oracles["gm"]

    def test_remote_handle_protocol(self, client, oracles):
        handle = client.submit("tc")
        result = handle.result(timeout=120)
        assert result.aggregate == oracles["tc"]
        assert handle.status() == "done"
        assert handle.done()
        assert not handle.cancel()  # finished jobs are not cancellable

    def test_unknown_app_and_bad_params_reject(self, client):
        with pytest.raises(JobRejectedError, match="unknown app"):
            client.submit("frobnicate")
        with pytest.raises(JobRejectedError, match="gamma"):
            client.submit("qc", {"gamma": 7})
        with pytest.raises(JobRejectedError, match="unknown parameter"):
            client.submit("tc", {"wat": 1})

    def test_unknown_job_id_is_a_service_error(self, client):
        with pytest.raises(ServiceError, match="no such job"):
            client.status("job-9999")

    def test_failed_job_reports_error_string(self, client):
        # 'fail' passes admission but explodes once workers build it;
        # the error must come back typed with the original message.
        handle = client.submit("fail")
        with pytest.raises(ServiceError, match="kaboom"):
            handle.result(timeout=120)
        assert handle.status() == "failed"
        assert "RuntimeError" in handle.record["error"]


# -- the result cache ----------------------------------------------------


class TestResultCache:
    def test_repeat_submission_hits_cache_with_zero_rounds(self, client,
                                                           oracles):
        first = client.submit("mcf")
        r1 = first.result(timeout=120)
        assert first.record["mining_rounds"] > 0
        second = client.submit("mcf")
        assert second.record["cached"]
        assert second.record["status"] == "done"
        assert second.record["mining_rounds"] == 0
        r2 = second.result(timeout=10)
        assert r2.aggregate == r1.aggregate
        stats = client.stats()
        assert stats["cache_hits"] == 1
        assert stats["executed"] == 1  # the second submission ran nothing

    def test_default_params_share_the_cache_entry(self, client):
        spelled = client.submit("cliques", {"min_size": 3})
        spelled.result(timeout=120)
        # Same computation with the default elided: must hit, not rerun.
        defaulted = client.submit("cliques", {})
        assert defaulted.record["cached"]

    def test_different_params_miss(self, client):
        client.submit("cliques", {"min_size": 3}).result(timeout=120)
        other = client.submit("cliques", {"min_size": 5})
        assert not other.record["cached"]
        other.result(timeout=120)

    def test_cache_key_is_digest_and_canonical_params(self, graph):
        digest = graph_digest(graph)
        assert (cache_key(digest, "qc", {"gamma": 0.8})
                == cache_key(digest, "qc", {"min_size": 4, "gamma": 0.8}))
        assert (cache_key(digest, "qc", {"gamma": 0.8})
                != cache_key(digest, "qc", {"gamma": 0.9}))
        assert canonical_params("tc") == canonical_params("tc", {"bundle": 0})

    def test_cache_disabled(self, graph):
        with GraphService(graph, config=cfg(), result_cache_size=0) as svc:
            svc.submit(JobSpec("tc"))
            svc.wait_result("job-1", timeout=120)
            again = svc.submit(JobSpec("tc"))
            assert not again["cached"]
            svc.wait_result(again["job_id"], timeout=120)


# -- admission: quotas, fairness, backpressure ---------------------------


class TestAdmission:
    def test_quota_bounds_concurrency(self, graph, gate):
        """worker_budget=2 with 2-worker jobs ⇒ strictly one at a time."""
        wait_started, release = gate
        with GraphService(graph, config=cfg(), worker_budget=2) as svc:
            first = svc.submit(JobSpec("block"))
            assert wait_started()
            second = svc.submit(JobSpec("tc"))
            assert first["status"] == "running"
            assert second["status"] == "queued"
            assert svc.stats()["workers_available"] == 0
            release()
            svc.wait_result(second["job_id"], timeout=120)
            assert svc.stats()["workers_available"] == 2

    def test_per_job_quota_is_capped(self, graph):
        with GraphService(graph, config=cfg(), worker_budget=4,
                          max_workers_per_job=2) as svc:
            record = svc.submit(JobSpec("tc", num_workers=64))
            assert record["quota"] == 2
            result = svc.wait_result(record["job_id"], timeout=120)
            assert result.num_workers == 2

    def test_queue_full_rejects_explicitly(self, graph, gate):
        wait_started, release = gate
        with GraphService(graph, config=cfg(), worker_budget=2,
                          max_queue_depth=2) as svc:
            svc.submit(JobSpec("block"))
            assert wait_started()
            svc.submit(JobSpec("tc"))
            svc.submit(JobSpec("cliques"))
            with pytest.raises(JobRejectedError, match="queue is full"):
                svc.submit(JobSpec("mcf"))
            assert svc.stats()["rejected"] == 1
            release()

    def test_backlogged_tenant_cannot_starve_light_one(self, graph, gate):
        """heavy queues four jobs behind a blocker; light then submits
        one.  Stride scheduling runs light's job next — it finishes
        before every queued heavy job, despite arriving last."""
        wait_started, release = gate
        with GraphService(graph, config=cfg(), worker_budget=2,
                          max_queue_depth=16) as svc:
            svc.submit(JobSpec("block", tenant="heavy"))
            assert wait_started()
            heavy = [svc.submit(JobSpec("block", {"id": n}, tenant="heavy"))
                     for n in range(1, 5)]
            light = svc.submit(JobSpec("tc", tenant="light"))
            release()
            svc.wait_result(light["job_id"], timeout=120)
            for record in heavy:
                svc.wait_result(record["job_id"], timeout=120)
            done_seq = {r["job_id"]: svc.status(r["job_id"])["done_seq"]
                        for r in heavy + [light]}
            light_seq = done_seq[light["job_id"]]
            heavy_seqs = [done_seq[r["job_id"]] for r in heavy]
            assert light_seq < max(heavy_seqs), (
                f"light tenant finished {light_seq} after the whole heavy "
                f"backlog {heavy_seqs} - starved"
            )

    def test_tenant_weights_validated(self, graph):
        with pytest.raises(ValueError, match="weight"):
            GraphService(graph, tenant_weights={"x": 0})

    def test_cancel_queued_job(self, graph, gate, oracles):
        wait_started, release = gate
        with GraphService(graph, config=cfg(), worker_budget=2) as svc:
            host, port = svc.start().address
            with ServiceClient(f"{host}:{port}") as c:
                blocker = c.submit("block")
                assert wait_started()
                queued = c.submit("tc")
                assert queued.cancel()
                assert queued.status() == "cancelled"
                with pytest.raises(JobCancelledError):
                    queued.result(timeout=5)
                release()
                assert blocker.result(timeout=120).aggregate == oracles["tc"]
                assert c.stats()["cancelled"] == 1


# -- wire robustness ------------------------------------------------------


class TestWire:
    def test_malformed_request_gets_typed_error(self, service):
        from repro.net.tcp import ControlChannel, connect_with_retry

        host, port = service.address
        chan = ControlChannel(connect_with_retry(host, port, 10.0))
        try:
            chan.send_obj(("no-such-op", {}))
            status, body = chan.recv_obj(timeout=10)
            assert status == "error" and body["kind"] == "bad-request"
            chan.send_obj("not even a tuple")
            status, body = chan.recv_obj(timeout=10)
            assert status == "error" and body["kind"] == "bad-request"
            # The connection survives garbage: a well-formed request
            # afterwards still answers.
            chan.send_obj(("stats", {}))
            status, body = chan.recv_obj(timeout=10)
            assert status == "ok"
        finally:
            chan.close()

    def test_shutdown_op_stops_server(self, graph):
        svc = GraphService(graph, config=cfg()).start()
        host, port = svc.address
        waiter = threading.Thread(target=svc.serve_forever, daemon=True)
        waiter.start()
        with ServiceClient(f"{host}:{port}") as c:
            c.shutdown()
        waiter.join(timeout=15)
        assert not waiter.is_alive()


# -- CLI front end --------------------------------------------------------


class TestCLI:
    def test_submit_and_jobs_roundtrip(self, service, oracles, capsys):
        from repro.cli import main

        host, port = service.address
        server = f"{host}:{port}"
        assert main(["submit", "--server", server, "--app", "tc"]) == 0
        out = capsys.readouterr().out
        assert f"aggregate    : {oracles['tc']}" in out

        assert main(["submit", "--server", server, "--app", "tc"]) == 0
        assert "(cached)" in capsys.readouterr().out

        assert main(["jobs", "--server", server, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "job-1" in out and "cache_hits" in out

    def test_submit_rejection_exits_nonzero(self, service, capsys):
        from repro.cli import main

        host, port = service.address
        rc = main(["submit", "--server", f"{host}:{port}",
                   "--app", "qc", "--param", "gamma=9"])
        assert rc == 1
        assert "rejected" in capsys.readouterr().err

    def test_cancel_subcommand(self, graph, gate, capsys):
        from repro.cli import main

        wait_started, release = gate
        with GraphService(graph, config=cfg(), worker_budget=2) as svc:
            host, port = svc.start().address
            server = f"{host}:{port}"
            assert main(["submit", "--server", server, "--app", "block",
                         "--no-wait"]) == 0
            blocker_id = capsys.readouterr().out.split()[0]
            assert wait_started()
            assert main(["submit", "--server", server, "--app", "tc",
                         "--no-wait"]) == 0
            queued_id = capsys.readouterr().out.split()[0]
            assert main(["cancel", "--server", server, queued_id]) == 0
            out = capsys.readouterr().out
            assert "cancel accepted" in out and "cancelled" in out
            # Already terminal: the second cancel refuses, exit 1.
            assert main(["cancel", "--server", server, queued_id]) == 1
            assert "not cancellable" in capsys.readouterr().err
            release()
            svc.wait_result(blocker_id, timeout=120)


# -- running-job cancellation --------------------------------------------


class TestRunningCancel:
    @pytest.mark.parametrize("runtime", ["threaded", "process"])
    def test_cancel_running_job_readmits_quota(self, graph, runtime):
        """The acceptance proof: cancel a running job mid-mining and the
        quota it held funds a queued follower — settled in done_seq
        order (victim first), no budget leak."""
        with GraphService(graph, config=slow_cfg(), runtime=runtime,
                          worker_budget=2) as svc:
            victim = svc.submit(JobSpec("slow"))
            assert _wait_status(svc, victim["job_id"], "running")
            follower = svc.submit(JobSpec("tc"))
            assert follower["status"] == "queued"
            time.sleep(0.05)  # let it actually mine a little
            assert svc.cancel(victim["job_id"])
            # The follower only runs once the victim's quota comes back.
            result = svc.wait_result(follower["job_id"], timeout=120)
            assert result.aggregate == count_triangles(graph)
            with pytest.raises(JobCancelledError):
                svc.wait_result(victim["job_id"], timeout=30)
            v_rec = svc.status(victim["job_id"])
            f_rec = svc.status(follower["job_id"])
            assert v_rec["status"] == "cancelled"
            assert v_rec["done_seq"] < f_rec["done_seq"]
            stats = svc.stats()
            assert stats["workers_available"] == 2
            assert stats["cancelled"] == 1

    def test_running_cancel_refused_without_capability(self, graph, gate):
        wait_started, release = gate
        with GraphService(graph, config=cfg(), worker_budget=2) as svc:
            svc._cancellable = False  # what a cluster-backed service gets
            record = svc.submit(JobSpec("block"))
            assert wait_started()
            assert not svc.cancel(record["job_id"])
            release()
            assert svc.wait_result(record["job_id"], timeout=120) is not None


# -- in-flight dedup ------------------------------------------------------


class TestInflightDedup:
    def test_identical_submissions_execute_once(self, graph, gate):
        wait_started, release = gate
        with GraphService(graph, config=cfg(), worker_budget=2) as svc:
            first = svc.submit(JobSpec("block", tenant="a"))
            assert wait_started()
            second = svc.submit(JobSpec("block", tenant="b"))
            third = svc.submit(JobSpec("block", tenant="c"))
            assert not first["deduped"]
            assert second["deduped"] and third["deduped"]
            assert second["status"] == "running"  # attached, not queued
            release()
            answers = [svc.wait_result(r["job_id"], timeout=120)
                       for r in (first, second, third)]
            assert len({a.aggregate for a in answers}) == 1
            stats = svc.stats()
            assert stats["executed"] == 1
            assert stats["deduped"] == 2
            assert stats["completed"] == 3
            assert stats["workers_available"] == 2

    def test_dedup_attaches_while_queued(self, graph, gate):
        wait_started, release = gate
        with GraphService(graph, config=cfg(), worker_budget=2) as svc:
            svc.submit(JobSpec("block"))
            assert wait_started()
            q1 = svc.submit(JobSpec("tc"))
            q2 = svc.submit(JobSpec("tc"))
            assert q1["status"] == q2["status"] == "queued"
            assert q2["deduped"] and not q1["deduped"]
            assert svc.stats()["queued"] == 1  # one execution, two records
            release()
            r1 = svc.wait_result(q1["job_id"], timeout=120)
            r2 = svc.wait_result(q2["job_id"], timeout=120)
            assert r1.aggregate == r2.aggregate == count_triangles(graph)
            assert svc.stats()["executed"] == 2  # block + one tc

    def test_cancel_one_subscriber_spares_the_execution(self, graph, gate):
        wait_started, release = gate
        with GraphService(graph, config=cfg(), worker_budget=2) as svc:
            first = svc.submit(JobSpec("block", tenant="a"))
            assert wait_started()
            second = svc.submit(JobSpec("block", tenant="b"))
            assert svc.cancel(second["job_id"])
            rec = svc.status(second["job_id"])
            assert rec["status"] == "cancelled"
            assert rec["done_seq"] is not None
            release()
            # The shared execution keeps mining for its live subscriber.
            assert svc.wait_result(first["job_id"], timeout=120) is not None
            stats = svc.stats()
            assert stats["cancelled"] == 1
            assert stats["completed"] == 1
            assert stats["executed"] == 1

    def test_last_subscriber_cancel_kills_execution(self, graph):
        with GraphService(graph, config=slow_cfg(), runtime="threaded",
                          worker_budget=2) as svc:
            first = svc.submit(JobSpec("slow"))
            assert _wait_status(svc, first["job_id"], "running")
            second = svc.submit(JobSpec("slow"))
            assert second["deduped"]
            assert svc.cancel(second["job_id"])  # execution survives
            assert svc.cancel(first["job_id"])   # last subscriber: kill it
            with pytest.raises(JobCancelledError):
                svc.wait_result(first["job_id"], timeout=30)
            # The record settles at cancel time; the quota comes back
            # once the abort lands at the next sync boundary.
            deadline = time.monotonic() + 30
            while (svc.stats()["workers_available"] != 2
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert svc.stats()["workers_available"] == 2
            assert svc.stats()["inflight"] == 0
            # A fresh identical submission must NOT attach to the dying
            # execution: it runs (or queues) anew.
            again = svc.submit(JobSpec("slow"))
            assert not again["deduped"]
            svc.cancel(again["job_id"])


# -- the persistent result cache ------------------------------------------


class TestPersistentCache:
    def test_restart_serves_from_disk_with_zero_rounds(self, graph, oracles,
                                                       tmp_path):
        cache_dir = str(tmp_path / "results")
        with GraphService(graph, config=cfg(),
                          cache_dir=cache_dir) as svc:
            record = svc.submit(JobSpec("tc"))
            svc.wait_result(record["job_id"], timeout=120)
        # A brand-new service over the same graph + cache dir: the
        # repeat answers from disk without touching a worker.
        with GraphService(graph, config=cfg(),
                          cache_dir=cache_dir) as svc2:
            again = svc2.submit(JobSpec("tc"))
            assert again["cached"]
            assert again["mining_rounds"] == 0
            result = svc2.wait_result(again["job_id"], timeout=10)
            assert result.aggregate == oracles["tc"]
            stats = svc2.stats()
            assert stats["executed"] == 0
            assert stats["cache_hits"] == 1
            assert stats["cache_disk_entries"] >= 1

    def test_digest_mismatch_invalidates_stale_files(self, graph, tmp_path):
        cache_dir = str(tmp_path / "results")
        with GraphService(graph, config=cfg(), cache_dir=cache_dir) as svc:
            record = svc.submit(JobSpec("tc"))
            svc.wait_result(record["job_id"], timeout=120)
            assert svc.stats()["cache_disk_entries"] == 1
        other = erdos_renyi(40, 0.2, seed=99)
        with GraphService(other, config=cfg(), cache_dir=cache_dir) as svc2:
            fresh = svc2.submit(JobSpec("tc"))
            assert not fresh["cached"]  # different digest: a true miss
            assert (svc2.wait_result(fresh["job_id"], timeout=120).aggregate
                    == count_triangles(other))

    def test_corrupt_file_is_a_miss_and_self_cleans(self, tmp_path):
        cache = ResultCache(8, "digest-a", cache_dir=str(tmp_path))
        cache.put("deadbeef", {"answer": 42})
        assert cache.disk_entries() == 1
        (tmp_path / "deadbeef.pkl").write_bytes(b"not a pickle")
        fresh = ResultCache(8, "digest-a", cache_dir=str(tmp_path))
        assert fresh.get("deadbeef") is None
        assert fresh.disk_entries() == 0  # the bad file was discarded

    def test_wrong_digest_file_is_discarded(self, tmp_path):
        ResultCache(8, "digest-a", cache_dir=str(tmp_path)).put("k1", "v1")
        cache_b = ResultCache(8, "digest-b", cache_dir=str(tmp_path))
        assert cache_b.get("k1") is None
        assert cache_b.disk_entries() == 0

    def test_disk_survives_memory_eviction(self, tmp_path):
        cache = ResultCache(1, "d", cache_dir=str(tmp_path))
        cache.put("k1", "v1")
        cache.put("k2", "v2")  # evicts k1 from the LRU
        assert len(cache) == 1
        assert cache.get("k1") == "v1"  # reloaded from disk

    def test_capacity_zero_disables_disk_too(self, tmp_path):
        cache = ResultCache(0, "d", cache_dir=str(tmp_path))
        cache.put("k1", "v1")
        assert cache.get("k1") is None
        assert cache.disk_entries() == 0
        assert not list(tmp_path.iterdir())


# -- service-layer regression fixes ---------------------------------------


class TestServiceBugfixes:
    def test_submit_after_close_is_a_typed_rejection(self, graph):
        svc = GraphService(graph, config=cfg(), worker_budget=2)
        svc.close()
        with pytest.raises(ServiceError, match="shut down"):
            svc.submit(JobSpec("tc"))
        # Rejected *before* any scheduler mutation: no ghost record, no
        # leaked budget, nothing counted as submitted.
        stats = svc.stats()
        assert stats["submitted"] == 0
        assert stats["workers_available"] == 2
        assert svc.jobs() == []

    def test_dispatch_failure_restores_budget_and_fails_record(self, graph):
        svc = GraphService(graph, config=cfg(), worker_budget=2)
        try:
            # Close the session behind the scheduler's back — the race
            # close() used to lose: Session.submit raises mid-dispatch.
            svc._session.close(wait=True)
            record = svc.submit(JobSpec("tc"))
            assert svc.status(record["job_id"])["status"] == "failed"
            assert "dispatch failed" in svc.status(record["job_id"])["error"]
            with pytest.raises(ServiceError, match="dispatch failed"):
                svc.wait_result(record["job_id"], timeout=5)
            stats = svc.stats()
            assert stats["workers_available"] == 2  # budget restored
            assert stats["executed"] == 0
            assert stats["failed"] == 1
        finally:
            svc.close()

    def test_queued_cancel_stamps_done_seq(self, graph, gate):
        wait_started, release = gate
        with GraphService(graph, config=cfg(), worker_budget=2) as svc:
            blocker = svc.submit(JobSpec("block"))
            assert wait_started()
            queued = svc.submit(JobSpec("tc"))
            assert svc.cancel(queued["job_id"])
            cancelled_rec = svc.status(queued["job_id"])
            assert cancelled_rec["done_seq"] is not None
            release()
            svc.wait_result(blocker["job_id"], timeout=120)
            # Completion ordering is observable: the cancel settled first.
            assert (svc.status(blocker["job_id"])["done_seq"]
                    > cancelled_rec["done_seq"])

    def test_internal_error_reply_keeps_connection_alive(self, service):
        from repro.net.tcp import ControlChannel, connect_with_retry

        host, port = service.address
        chan = ControlChannel(connect_with_retry(host, port, 10.0))
        try:
            # A payload that explodes inside the handler (dict("...")
            # raises ValueError) must cost one request, not the socket.
            chan.send_obj(("submit", {"app": "tc", "params": "notadict"}))
            status, body = chan.recv_obj(timeout=10)
            assert status == "error" and body["kind"] == "internal"
            chan.send_obj(("stats", {}))
            status, _body = chan.recv_obj(timeout=10)
            assert status == "ok"
        finally:
            chan.close()

    def test_connection_tracking_is_bounded(self, graph):
        with GraphService(graph, config=cfg(), worker_budget=2) as svc:
            host, port = svc.start().address
            for _ in range(8):
                with ServiceClient(f"{host}:{port}") as c:
                    c.server_info()
            with ServiceClient(f"{host}:{port}") as c:
                # The accept loop reaps finished handler threads, so 8
                # dead connections must not linger in the tracking lists.
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    if c.stats()["open_connections"] <= 2:
                        break
                    time.sleep(0.05)
                assert c.stats()["open_connections"] <= 2
            with svc._conn_lock:
                assert len(svc._conn_threads) <= 3
                assert len(svc._channels) <= 3

    def test_drained_tenants_are_pruned(self, graph):
        with GraphService(graph, config=cfg(), worker_budget=2,
                          result_cache_size=0) as svc:
            for n in range(6):
                record = svc.submit(JobSpec("tc", tenant=f"tenant-{n}"))
                svc.wait_result(record["job_id"], timeout=120)
            # Every tenant has drained; the stride-scheduler maps must
            # not keep one entry per tenant that ever submitted.
            assert svc.stats()["tracked_tenants"] == 0
            assert svc.stats()["queued"] == 0
