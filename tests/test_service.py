"""The resident-graph job service: wire protocol, admission, fairness.

End-to-end over real localhost sockets: concurrent submitters get the
same answers as serial oracles, a repeated submission is served from the
result cache with *zero* mining rounds, per-job quotas bound concurrent
worker use, the stride scheduler keeps a backlogged tenant from starving
a light one, and a full admission queue rejects loudly.
"""

from __future__ import annotations

import threading

import pytest

from repro import GThinkerConfig
from repro.algorithms import count_triangles, max_clique_reference
from repro.algorithms.matching import count_matches, triangle_query
from repro.apps import TriangleCountComper
from repro.core.errors import JobCancelledError, JobRejectedError, ServiceError
from repro.graph import erdos_renyi, graph_digest, with_random_labels
from repro.service import (
    GraphService,
    JobSpec,
    ServiceClient,
    cache_key,
    canonical_params,
    register_service_app,
)

TRIANGLE_EDGES = [[0, 1], [1, 2], [0, 2]]


def cfg(**kw):
    base = dict(num_workers=2, compers_per_worker=2, task_batch_size=4)
    base.update(kw)
    return GThinkerConfig(**base)


@pytest.fixture(scope="module")
def graph():
    return with_random_labels(erdos_renyi(90, 0.1, seed=23), num_labels=3,
                              seed=5)


@pytest.fixture(scope="module")
def oracles(graph):
    return {
        "tc": count_triangles(graph),
        "mcf": len(max_clique_reference(graph)),
        "gm": count_matches(graph, triangle_query()),
    }


@pytest.fixture
def service(graph):
    with GraphService(graph, config=cfg(), runtime="threaded",
                      worker_budget=4) as svc:
        yield svc


@pytest.fixture
def client(service):
    host, port = service.address
    with ServiceClient(f"{host}:{port}") as c:
        yield c


# -- a deterministic blocking app for scheduler tests -------------------

_STARTED = threading.Event()
_RELEASE = threading.Event()


def _block_builder(params):
    def factory():
        _STARTED.set()
        if not _RELEASE.wait(30):  # pragma: no cover - hung test guard
            raise RuntimeError("blocking app never released")
        return TriangleCountComper()

    return factory


register_service_app(
    "block", _block_builder,
    description="test-only: holds its worker quota until released",
    defaults={"id": 0},
)


def _fail_builder(params):
    def factory():
        raise RuntimeError("kaboom at mining time")

    return factory


register_service_app(
    "fail", _fail_builder,
    description="test-only: passes admission, explodes at run time",
)


@pytest.fixture
def gate():
    """Arms the 'block' app; yields (wait_started, release)."""
    _STARTED.clear()
    _RELEASE.clear()
    yield (lambda: _STARTED.wait(10)), _RELEASE.set
    _RELEASE.set()  # never leave a runner thread hanging


# -- end-to-end over the socket -----------------------------------------


class TestEndToEnd:
    def test_hello_reports_graph_and_limits(self, graph, client):
        info = client.server_info()
        assert info["graph_digest"] == graph_digest(graph)
        assert info["num_vertices"] == graph.num_vertices
        assert {"tc", "mcf", "cliques", "qc", "gm"} <= set(info["apps"])
        assert info["worker_budget"] == 4

    def test_concurrent_submitters_match_oracles(self, service, oracles):
        """N client threads × (tc, mcf, gm) — every answer equals its
        serial oracle even while the jobs interleave."""
        host, port = service.address
        answers, failures = {}, []

        def submitter(name, app, params):
            try:
                with ServiceClient(f"{host}:{port}") as c:
                    handle = c.submit(app, params, tenant=name)
                    answers[(name, app)] = handle.result(timeout=120)
            except BaseException as exc:  # noqa: BLE001 - recorded for assert
                failures.append((name, app, exc))

        jobs = [("alice", "tc", {}), ("bob", "mcf", {}),
                ("carol", "gm", {"query_edges": TRIANGLE_EDGES}),
                ("dave", "tc", {"bundle": 8})]
        threads = [threading.Thread(target=submitter, args=j) for j in jobs]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=180)
        assert not failures, failures
        assert answers[("alice", "tc")].aggregate == oracles["tc"]
        assert answers[("dave", "tc")].aggregate == oracles["tc"]
        assert len(answers[("bob", "mcf")].aggregate) == oracles["mcf"]
        assert answers[("carol", "gm")].aggregate == oracles["gm"]

    def test_remote_handle_protocol(self, client, oracles):
        handle = client.submit("tc")
        result = handle.result(timeout=120)
        assert result.aggregate == oracles["tc"]
        assert handle.status() == "done"
        assert handle.done()
        assert not handle.cancel()  # finished jobs are not cancellable

    def test_unknown_app_and_bad_params_reject(self, client):
        with pytest.raises(JobRejectedError, match="unknown app"):
            client.submit("frobnicate")
        with pytest.raises(JobRejectedError, match="gamma"):
            client.submit("qc", {"gamma": 7})
        with pytest.raises(JobRejectedError, match="unknown parameter"):
            client.submit("tc", {"wat": 1})

    def test_unknown_job_id_is_a_service_error(self, client):
        with pytest.raises(ServiceError, match="no such job"):
            client.status("job-9999")

    def test_failed_job_reports_error_string(self, client):
        # 'fail' passes admission but explodes once workers build it;
        # the error must come back typed with the original message.
        handle = client.submit("fail")
        with pytest.raises(ServiceError, match="kaboom"):
            handle.result(timeout=120)
        assert handle.status() == "failed"
        assert "RuntimeError" in handle.record["error"]


# -- the result cache ----------------------------------------------------


class TestResultCache:
    def test_repeat_submission_hits_cache_with_zero_rounds(self, client,
                                                           oracles):
        first = client.submit("mcf")
        r1 = first.result(timeout=120)
        assert first.record["mining_rounds"] > 0
        second = client.submit("mcf")
        assert second.record["cached"]
        assert second.record["status"] == "done"
        assert second.record["mining_rounds"] == 0
        r2 = second.result(timeout=10)
        assert r2.aggregate == r1.aggregate
        stats = client.stats()
        assert stats["cache_hits"] == 1
        assert stats["executed"] == 1  # the second submission ran nothing

    def test_default_params_share_the_cache_entry(self, client):
        spelled = client.submit("cliques", {"min_size": 3})
        spelled.result(timeout=120)
        # Same computation with the default elided: must hit, not rerun.
        defaulted = client.submit("cliques", {})
        assert defaulted.record["cached"]

    def test_different_params_miss(self, client):
        client.submit("cliques", {"min_size": 3}).result(timeout=120)
        other = client.submit("cliques", {"min_size": 5})
        assert not other.record["cached"]
        other.result(timeout=120)

    def test_cache_key_is_digest_and_canonical_params(self, graph):
        digest = graph_digest(graph)
        assert (cache_key(digest, "qc", {"gamma": 0.8})
                == cache_key(digest, "qc", {"min_size": 4, "gamma": 0.8}))
        assert (cache_key(digest, "qc", {"gamma": 0.8})
                != cache_key(digest, "qc", {"gamma": 0.9}))
        assert canonical_params("tc") == canonical_params("tc", {"bundle": 0})

    def test_cache_disabled(self, graph):
        with GraphService(graph, config=cfg(), result_cache_size=0) as svc:
            svc.submit(JobSpec("tc"))
            svc.wait_result("job-1", timeout=120)
            again = svc.submit(JobSpec("tc"))
            assert not again["cached"]
            svc.wait_result(again["job_id"], timeout=120)


# -- admission: quotas, fairness, backpressure ---------------------------


class TestAdmission:
    def test_quota_bounds_concurrency(self, graph, gate):
        """worker_budget=2 with 2-worker jobs ⇒ strictly one at a time."""
        wait_started, release = gate
        with GraphService(graph, config=cfg(), worker_budget=2) as svc:
            first = svc.submit(JobSpec("block"))
            assert wait_started()
            second = svc.submit(JobSpec("tc"))
            assert first["status"] == "running"
            assert second["status"] == "queued"
            assert svc.stats()["workers_available"] == 0
            release()
            svc.wait_result(second["job_id"], timeout=120)
            assert svc.stats()["workers_available"] == 2

    def test_per_job_quota_is_capped(self, graph):
        with GraphService(graph, config=cfg(), worker_budget=4,
                          max_workers_per_job=2) as svc:
            record = svc.submit(JobSpec("tc", num_workers=64))
            assert record["quota"] == 2
            result = svc.wait_result(record["job_id"], timeout=120)
            assert result.num_workers == 2

    def test_queue_full_rejects_explicitly(self, graph, gate):
        wait_started, release = gate
        with GraphService(graph, config=cfg(), worker_budget=2,
                          max_queue_depth=2) as svc:
            svc.submit(JobSpec("block"))
            assert wait_started()
            svc.submit(JobSpec("tc"))
            svc.submit(JobSpec("cliques"))
            with pytest.raises(JobRejectedError, match="queue is full"):
                svc.submit(JobSpec("mcf"))
            assert svc.stats()["rejected"] == 1
            release()

    def test_backlogged_tenant_cannot_starve_light_one(self, graph, gate):
        """heavy queues four jobs behind a blocker; light then submits
        one.  Stride scheduling runs light's job next — it finishes
        before every queued heavy job, despite arriving last."""
        wait_started, release = gate
        with GraphService(graph, config=cfg(), worker_budget=2,
                          max_queue_depth=16) as svc:
            svc.submit(JobSpec("block", tenant="heavy"))
            assert wait_started()
            heavy = [svc.submit(JobSpec("block", {"id": n}, tenant="heavy"))
                     for n in range(1, 5)]
            light = svc.submit(JobSpec("tc", tenant="light"))
            release()
            svc.wait_result(light["job_id"], timeout=120)
            for record in heavy:
                svc.wait_result(record["job_id"], timeout=120)
            done_seq = {r["job_id"]: svc.status(r["job_id"])["done_seq"]
                        for r in heavy + [light]}
            light_seq = done_seq[light["job_id"]]
            heavy_seqs = [done_seq[r["job_id"]] for r in heavy]
            assert light_seq < max(heavy_seqs), (
                f"light tenant finished {light_seq} after the whole heavy "
                f"backlog {heavy_seqs} - starved"
            )

    def test_tenant_weights_validated(self, graph):
        with pytest.raises(ValueError, match="weight"):
            GraphService(graph, tenant_weights={"x": 0})

    def test_cancel_queued_job(self, graph, gate, oracles):
        wait_started, release = gate
        with GraphService(graph, config=cfg(), worker_budget=2) as svc:
            host, port = svc.start().address
            with ServiceClient(f"{host}:{port}") as c:
                blocker = c.submit("block")
                assert wait_started()
                queued = c.submit("tc")
                assert queued.cancel()
                assert queued.status() == "cancelled"
                with pytest.raises(JobCancelledError):
                    queued.result(timeout=5)
                release()
                assert blocker.result(timeout=120).aggregate == oracles["tc"]
                assert c.stats()["cancelled"] == 1


# -- wire robustness ------------------------------------------------------


class TestWire:
    def test_malformed_request_gets_typed_error(self, service):
        from repro.net.tcp import ControlChannel, connect_with_retry

        host, port = service.address
        chan = ControlChannel(connect_with_retry(host, port, 10.0))
        try:
            chan.send_obj(("no-such-op", {}))
            status, body = chan.recv_obj(timeout=10)
            assert status == "error" and body["kind"] == "bad-request"
            chan.send_obj("not even a tuple")
            status, body = chan.recv_obj(timeout=10)
            assert status == "error" and body["kind"] == "bad-request"
            # The connection survives garbage: a well-formed request
            # afterwards still answers.
            chan.send_obj(("stats", {}))
            status, body = chan.recv_obj(timeout=10)
            assert status == "ok"
        finally:
            chan.close()

    def test_shutdown_op_stops_server(self, graph):
        svc = GraphService(graph, config=cfg()).start()
        host, port = svc.address
        waiter = threading.Thread(target=svc.serve_forever, daemon=True)
        waiter.start()
        with ServiceClient(f"{host}:{port}") as c:
            c.shutdown()
        waiter.join(timeout=15)
        assert not waiter.is_alive()


# -- CLI front end --------------------------------------------------------


class TestCLI:
    def test_submit_and_jobs_roundtrip(self, service, oracles, capsys):
        from repro.cli import main

        host, port = service.address
        server = f"{host}:{port}"
        assert main(["submit", "--server", server, "--app", "tc"]) == 0
        out = capsys.readouterr().out
        assert f"aggregate    : {oracles['tc']}" in out

        assert main(["submit", "--server", server, "--app", "tc"]) == 0
        assert "(cached)" in capsys.readouterr().out

        assert main(["jobs", "--server", server, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "job-1" in out and "cache_hits" in out

    def test_submit_rejection_exits_nonzero(self, service, capsys):
        from repro.cli import main

        host, port = service.address
        rc = main(["submit", "--server", f"{host}:{port}",
                   "--app", "qc", "--param", "gamma=9"])
        assert rc == 1
        assert "rejected" in capsys.readouterr().err
