"""Engine-level tests of the comper pop/push rounds, parking and refills."""

import pytest

from repro.core.api import Comper, Task, VertexView
from repro.core.config import GThinkerConfig
from repro.core.errors import TaskError
from repro.core.job import build_cluster
from repro.core.runtime import SerialRuntime
from repro.graph import Graph, erdos_renyi, hash_partition


def cfg(**kw):
    base = dict(num_workers=2, compers_per_worker=1, task_batch_size=4,
                cache_capacity=64, cache_buckets=8, sync_every_rounds=4)
    base.update(kw)
    return GThinkerConfig(**base)


class PullOneRemote(Comper):
    """Each task pulls exactly one (possibly remote) vertex, then records
    the adjacency it saw."""

    def task_spawn(self, v: VertexView) -> None:
        if len(v.adj):
            t = Task(context=v.id)
            t.pull(v.adj[0])
            self.add_task(t)

    def compute(self, task, frontier):
        (view,) = frontier
        self.output((task.context, view.id, view.adj))
        return False


class MultiHop(Comper):
    """Tasks iterate twice: pull first neighbor, then its first neighbor."""

    def task_spawn(self, v: VertexView) -> None:
        if len(v.adj):
            t = Task(context={"hops": 0, "origin": v.id})
            t.pull(v.adj[0])
            self.add_task(t)

    def compute(self, task, frontier):
        task.context["hops"] += 1
        view = frontier[0]
        if task.context["hops"] == 1 and len(view.adj):
            task.pull(view.adj[0])
            return True
        self.output((task.context["origin"], task.context["hops"]))
        return False


@pytest.fixture
def graph():
    return erdos_renyi(40, 0.2, seed=13)


def test_remote_pulls_resolve_correctly(graph):
    cluster = build_cluster(PullOneRemote, graph, cfg())
    SerialRuntime().run(cluster)
    outputs = [rec for w in cluster.workers for rec in w.outputs()]
    assert len(outputs) == sum(1 for v in graph.vertices() if graph.degree(v))
    for origin, pulled, adj in outputs:
        assert pulled == graph.neighbors(origin)[0]
        assert tuple(adj) == graph.neighbors(pulled)


def test_multi_iteration_tasks(graph):
    cluster = build_cluster(MultiHop, graph, cfg())
    SerialRuntime().run(cluster)
    outputs = [rec for w in cluster.workers for rec in w.outputs()]
    assert outputs
    assert all(hops in (1, 2) for _origin, hops in outputs)
    assert any(hops == 2 for _origin, hops in outputs)


def test_cache_locks_all_released_at_end(graph):
    """After the job, every cached vertex must be unlocked (evictable)."""
    cluster = build_cluster(PullOneRemote, graph, cfg())
    SerialRuntime().run(cluster)
    for w in cluster.workers:
        w.cache.check_invariants()
        size = w.cache.exact_size()
        assert w.cache.evict(10**9) == size  # everything evictable


def test_user_exception_wrapped(graph):
    class Exploder(PullOneRemote):
        def compute(self, task, frontier):
            raise ValueError("user bug")

    cluster = build_cluster(Exploder, graph, cfg())
    with pytest.raises(TaskError):
        SerialRuntime().run(cluster)


def test_pending_threshold_gates_pop(graph):
    """With D=0, a comper that has any pending task must not pop more."""
    cluster = build_cluster(PullOneRemote, graph, cfg(pending_threshold=0))
    SerialRuntime().run(cluster)
    # Correctness preserved even under maximal gating...
    outputs = [rec for w in cluster.workers for rec in w.outputs()]
    assert len(outputs) == sum(1 for v in graph.vertices() if graph.degree(v))
    # ...and the gate actually fired.
    assert cluster.metrics.get("comper:pop_blocked_pending") > 0


def test_cache_overflow_gates_pop(graph):
    # δ=1 commits every counter change: with the default δ=10, a worker
    # seeing fewer than 10 remote pulls would never publish its size and
    # the (tiny) cache would never observe its own overflow.
    cluster = build_cluster(
        PullOneRemote, graph,
        cfg(cache_capacity=2, cache_overflow_alpha=0.0, cache_count_delta=1),
    )
    SerialRuntime().run(cluster)
    outputs = [rec for w in cluster.workers for rec in w.outputs()]
    assert len(outputs) == sum(1 for v in graph.vertices() if graph.degree(v))
    assert cluster.metrics.get("cache:evictions") > 0


def test_task_ids_unique_per_engine(graph):
    cluster = build_cluster(PullOneRemote, graph, cfg(compers_per_worker=2))
    SerialRuntime().run(cluster)
    # 48-bit sequences started at 0 for each comper; uniqueness is by
    # construction, but engines must have parked at least one task each
    # for the id machinery to have been exercised.
    assert cluster.metrics.get("cache:miss_first") > 0


def test_spill_and_refill_roundtrip():
    """A spawn-heavy app on one comper must spill batches and reload them."""

    class FanOut(Comper):
        def task_spawn(self, v: VertexView) -> None:
            for i in range(6):
                self.add_task(Task(context=(v.id, i)))

        def compute(self, task, frontier):
            self.output(task.context)
            return False

    g = Graph.from_edges([(i, i + 1) for i in range(30)])
    cluster = build_cluster(FanOut, g, cfg(num_workers=1, task_batch_size=2))
    SerialRuntime().run(cluster)
    outputs = [rec for w in cluster.workers for rec in w.outputs()]
    assert len(outputs) == 31 * 6
    assert len(set(outputs)) == len(outputs)
    assert cluster.metrics.get("tasks:spilled") > 0
    assert cluster.metrics.get("tasks:refilled_from_disk") == \
        cluster.metrics.get("tasks:spilled")
