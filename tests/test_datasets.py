"""Tests for the Table II dataset stand-ins."""

import pytest

from repro.graph import DATASETS, dataset_stats, make_dataset
from repro.graph.datasets import PAPER_TABLE2
from repro.algorithms import max_clique


def test_all_five_datasets_exist():
    assert set(DATASETS) == {"youtube", "skitter", "orkut", "btc", "friendster"}
    assert set(PAPER_TABLE2) == set(DATASETS)


def test_unknown_dataset_raises():
    with pytest.raises(KeyError):
        make_dataset("twitter")


@pytest.mark.parametrize("name", sorted(DATASETS))
def test_dataset_builds_and_has_stats(name):
    g = make_dataset(name, scale=0.1)
    stats = dataset_stats(g)
    assert stats["num_vertices"] > 0
    assert stats["num_edges"] > 0
    assert stats["max_degree"] >= stats["avg_degree"]


@pytest.mark.parametrize("name", sorted(DATASETS))
def test_dataset_deterministic(name):
    assert make_dataset(name, scale=0.1, seed=5) == make_dataset(name, scale=0.1, seed=5)


def test_scale_monotone():
    small = make_dataset("youtube", scale=0.1)
    big = make_dataset("youtube", scale=0.4)
    assert big.num_vertices > small.num_vertices


def test_labeled_variant():
    g = make_dataset("youtube", scale=0.1, labeled=3)
    assert {g.label(v) for v in g.vertices()} <= {0, 1, 2}


def test_orkut_is_densest_social():
    """Orkut's defining feature in Table II is its density."""
    yt = dataset_stats(make_dataset("youtube", scale=0.2))
    ok = dataset_stats(make_dataset("orkut", scale=0.2))
    assert ok["avg_degree"] > 2 * yt["avg_degree"]


def test_btc_has_extreme_skew():
    """BTC's hub region is what broke G-Miner; make sure it exists."""
    stats = dataset_stats(make_dataset("btc", scale=0.3))
    assert stats["max_degree"] > 10 * stats["avg_degree"]


def test_friendster_planted_clique_dominates():
    spec = DATASETS["friendster"]
    g, planted = spec.build_with_planted(scale=0.2)
    largest_planted = max(len(p) for p in planted)
    found = max_clique(g)
    assert len(found) >= largest_planted
