"""Tests for the numpy CSR representation and the shared-memory CSR."""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import count_triangles
from repro.graph import CSRGraph, Graph, SharedCSR, erdos_renyi


def test_roundtrip(er_graph):
    csr = CSRGraph.from_graph(er_graph)
    assert csr.to_graph() == er_graph


def test_counts(er_graph):
    csr = CSRGraph.from_graph(er_graph)
    assert csr.num_vertices == er_graph.num_vertices
    assert csr.num_edges == er_graph.num_edges


def test_degrees_match(er_graph):
    csr = CSRGraph.from_graph(er_graph)
    for v in er_graph.vertices():
        assert csr.degree(v) == er_graph.degree(v)
    assert csr.max_degree() == er_graph.max_degree()
    assert csr.average_degree() == pytest.approx(er_graph.average_degree())


def test_triangles_match(er_graph):
    assert CSRGraph.from_graph(er_graph).count_triangles() == count_triangles(er_graph)


def test_empty_graph():
    csr = CSRGraph.from_graph(Graph())
    assert csr.num_vertices == 0
    assert csr.count_triangles() == 0
    assert csr.max_degree() == 0


def test_noncontiguous_ids():
    g = Graph.from_edges([(10, 200), (200, 3000), (10, 3000)])
    csr = CSRGraph.from_graph(g)
    assert csr.count_triangles() == 1
    assert csr.degree(200) == 2
    assert csr.to_graph() == g


def test_memory_bytes_is_array_footprint(er_graph):
    csr = CSRGraph.from_graph(er_graph)
    expected = 8 * (len(csr.indptr) + len(csr.indices) + len(csr.vertex_ids))
    assert csr.memory_bytes() == expected


def test_validation_rejects_bad_arrays():
    with pytest.raises(ValueError):
        CSRGraph(np.array([0, 1]), np.array([0]), np.array([5, 6]))
    with pytest.raises(ValueError):
        CSRGraph(np.array([1, 1]), np.array([], dtype=np.int64), np.array([5]))


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 30), st.floats(0.0, 0.6), st.integers(0, 50))
def test_roundtrip_property(n, p, seed):
    g = erdos_renyi(n, p, seed=seed)
    csr = CSRGraph.from_graph(g)
    assert csr.to_graph() == g
    assert csr.count_triangles() == count_triangles(g)

# -- SharedCSR (the process backend's zero-copy graph) ---------------------


@pytest.fixture
def shared_csr(er_graph):
    csr = SharedCSR.from_graph(er_graph)
    yield csr
    csr.close()
    csr.unlink()


def test_shared_entries_match_graph(er_graph, shared_csr):
    for v in er_graph.vertices():
        label, adj = shared_csr.entry(v)
        assert label == er_graph.label(v)
        assert tuple(adj) == tuple(er_graph.neighbors(v))
        assert shared_csr.degree_of(v) == er_graph.degree(v)


def test_shared_counts(er_graph, shared_csr):
    assert shared_csr.num_vertices == er_graph.num_vertices
    assert shared_csr.num_edges == er_graph.num_edges


def test_shared_meta_is_picklable(shared_csr):
    meta = pickle.loads(pickle.dumps(shared_csr.meta))
    assert meta == shared_csr.meta


def test_shared_attach_sees_same_arrays(er_graph, shared_csr):
    attached = SharedCSR.attach(shared_csr.meta)
    try:
        assert not attached.owner
        np.testing.assert_array_equal(attached.indices, shared_csr.indices)
        np.testing.assert_array_equal(attached.vertex_ids,
                                      shared_csr.vertex_ids)
        v = int(shared_csr.vertex_ids[0])
        a_label, a_adj = attached.entry(v)
        s_label, s_adj = shared_csr.entry(v)
        assert a_label == s_label
        np.testing.assert_array_equal(a_adj, s_adj)
    finally:
        attached.close()


def test_shared_arrays_are_readonly(shared_csr):
    with pytest.raises(ValueError):
        shared_csr.indices[0] = 99


def test_shared_unknown_vertex_raises(shared_csr):
    with pytest.raises(KeyError):
        shared_csr.entry(10**9)


def test_attacher_cannot_unlink(shared_csr):
    attached = SharedCSR.attach(shared_csr.meta)
    try:
        with pytest.raises(ValueError):
            attached.unlink()
    finally:
        attached.close()


def test_shared_noncontiguous_ids():
    g = Graph.from_edges([(10, 200), (200, 3000), (10, 3000)])
    csr = SharedCSR.from_graph(g)
    try:
        label, adj = csr.entry(200)
        assert label == 0
        assert tuple(adj) == (10, 3000)
        assert csr.degree_of(3000) == 2
    finally:
        csr.close()
        csr.unlink()


def test_shared_empty_graph():
    csr = SharedCSR.from_graph(Graph())
    try:
        assert csr.num_vertices == 0
        assert csr.num_edges == 0
    finally:
        csr.close()
        csr.unlink()
