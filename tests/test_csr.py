"""Tests for the numpy CSR representation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import count_triangles
from repro.graph import CSRGraph, Graph, erdos_renyi


def test_roundtrip(er_graph):
    csr = CSRGraph.from_graph(er_graph)
    assert csr.to_graph() == er_graph


def test_counts(er_graph):
    csr = CSRGraph.from_graph(er_graph)
    assert csr.num_vertices == er_graph.num_vertices
    assert csr.num_edges == er_graph.num_edges


def test_degrees_match(er_graph):
    csr = CSRGraph.from_graph(er_graph)
    for v in er_graph.vertices():
        assert csr.degree(v) == er_graph.degree(v)
    assert csr.max_degree() == er_graph.max_degree()
    assert csr.average_degree() == pytest.approx(er_graph.average_degree())


def test_triangles_match(er_graph):
    assert CSRGraph.from_graph(er_graph).count_triangles() == count_triangles(er_graph)


def test_empty_graph():
    csr = CSRGraph.from_graph(Graph())
    assert csr.num_vertices == 0
    assert csr.count_triangles() == 0
    assert csr.max_degree() == 0


def test_noncontiguous_ids():
    g = Graph.from_edges([(10, 200), (200, 3000), (10, 3000)])
    csr = CSRGraph.from_graph(g)
    assert csr.count_triangles() == 1
    assert csr.degree(200) == 2
    assert csr.to_graph() == g


def test_memory_bytes_is_array_footprint(er_graph):
    csr = CSRGraph.from_graph(er_graph)
    expected = 8 * (len(csr.indptr) + len(csr.indices) + len(csr.vertex_ids))
    assert csr.memory_bytes() == expected


def test_validation_rejects_bad_arrays():
    with pytest.raises(ValueError):
        CSRGraph(np.array([0, 1]), np.array([0]), np.array([5, 6]))
    with pytest.raises(ValueError):
        CSRGraph(np.array([1, 1]), np.array([], dtype=np.int64), np.array([5]))


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 30), st.floats(0.0, 0.6), st.integers(0, 50))
def test_roundtrip_property(n, p, seed):
    g = erdos_renyi(n, p, seed=seed)
    csr = CSRGraph.from_graph(g)
    assert csr.to_graph() == g
    assert csr.count_triangles() == count_triangles(g)
