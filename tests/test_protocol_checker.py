"""Tests for the opt-in concurrency protocol checkers (repro.check)."""

import threading

import pytest

from repro.algorithms import count_triangles, max_clique_reference
from repro.apps import MaxCliqueComper, TriangleCountComper
from repro.check import (
    CheckedTaskQueue,
    CheckedVertexCache,
    SingleWriterGuard,
    TaskLifecycleChecker,
)
from repro.check.fuzz import HopSumComper, hop_sum_oracle
from repro.core.api import Task
from repro.core.config import GThinkerConfig
from repro.core.containers import TaskQueue, make_task_id
from repro.core.errors import ProtocolViolation
from repro.core.job import build_cluster, run_job
from repro.core.vertex_cache import VertexCache
from repro.graph import Graph, erdos_renyi, hash_partition


def make_cluster(**overrides):
    g = Graph.from_edges([(i, i + 1) for i in range(30)])
    kwargs = dict(
        num_workers=2,
        compers_per_worker=2,
        task_batch_size=4,
        cache_capacity=64,
        cache_buckets=8,
    )
    kwargs.update(overrides)
    return build_cluster(TriangleCountComper, g, GThinkerConfig(**kwargs)), g


# -- enabling ----------------------------------------------------------------


def test_checkers_off_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_CHECK", raising=False)
    cluster, _g = make_cluster()
    for w in cluster.workers:
        assert w.checker is None
        assert type(w.cache) is VertexCache
        for e in w.engines:
            assert e.checker is None
            assert type(e.q_task) is TaskQueue


def test_checkers_enabled_via_config():
    cluster, _g = make_cluster(check_protocols=True)
    for w in cluster.workers:
        assert isinstance(w.checker, TaskLifecycleChecker)
        assert isinstance(w.cache, CheckedVertexCache)
        for e in w.engines:
            assert e.checker is w.checker
            assert isinstance(e.q_task, CheckedTaskQueue)


def test_checkers_enabled_via_env(monkeypatch):
    monkeypatch.setenv("REPRO_CHECK", "1")
    assert GThinkerConfig().check_enabled
    cluster, _g = make_cluster()
    assert all(w.checker is not None for w in cluster.workers)
    monkeypatch.setenv("REPRO_CHECK", "0")
    assert not GThinkerConfig().check_enabled


# -- the lifecycle state machine ---------------------------------------------


def run_full_lifecycle(checker, comper_id=0):
    """Drive one task through a legal parked-and-yielded life."""
    t = Task(context="x")
    checker.on_queued(t, comper_id)
    checker.on_started(t, comper_id)
    t.task_id = make_task_id(comper_id, 0)
    checker.on_parked(t, comper_id)
    checker.on_ready(t)
    checker.on_resumed(t, comper_id)
    t.task_id = -1
    checker.on_yielded(t, comper_id)
    checker.on_queued(t, comper_id)  # re-queue after yield is legal
    checker.on_started(t, comper_id)
    checker.on_finished(t, comper_id)
    return t


def test_lifecycle_legal_path():
    checker = TaskLifecycleChecker(worker_id=0, compers_per_worker=2)
    run_full_lifecycle(checker)
    assert checker.live_tasks() == 0
    assert checker.transitions == 9
    checker.assert_quiescent()


def test_lifecycle_rejects_untracked_start():
    checker = TaskLifecycleChecker(worker_id=0, compers_per_worker=2)
    with pytest.raises(ProtocolViolation, match="on_started"):
        checker.on_started(Task(), 0)


def test_lifecycle_rejects_queue_with_live_id():
    checker = TaskLifecycleChecker(worker_id=0, compers_per_worker=2)
    t = Task()
    t.task_id = make_task_id(0, 7)
    with pytest.raises(ProtocolViolation, match="live task id"):
        checker.on_queued(t, 0)


def test_lifecycle_rejects_park_under_foreign_id():
    checker = TaskLifecycleChecker(worker_id=0, compers_per_worker=2)
    t = Task()
    checker.on_queued(t, 1)
    checker.on_started(t, 1)
    t.task_id = make_task_id(0, 3)  # minted by comper 0, parked on comper 1
    with pytest.raises(ProtocolViolation, match="wrong engine"):
        checker.on_parked(t, 1)


def test_lifecycle_rejects_cross_comper_pop():
    checker = TaskLifecycleChecker(worker_id=0, compers_per_worker=2)
    t = Task()
    checker.on_queued(t, 0)
    with pytest.raises(ProtocolViolation, match="owned by comper 0"):
        checker.on_started(t, 1)


def test_lifecycle_rejects_adoption_with_live_id():
    checker = TaskLifecycleChecker(worker_id=0, compers_per_worker=2)
    t = Task()
    t.task_id = make_task_id(1, 9)
    with pytest.raises(ProtocolViolation, match="serialize_tasks"):
        checker.on_adopted([t], 0)


def test_lifecycle_rejects_foreign_comper():
    checker = TaskLifecycleChecker(worker_id=0, compers_per_worker=2)
    with pytest.raises(ProtocolViolation, match="does not belong"):
        checker.on_queued(Task(), 5)


def test_lifecycle_quiescence_reports_leaked_tasks():
    checker = TaskLifecycleChecker(worker_id=0, compers_per_worker=2)
    checker.on_queued(Task(), 0)
    with pytest.raises(ProtocolViolation, match="unfinished"):
        checker.assert_quiescent()


# -- the cache-protocol checker ----------------------------------------------


def checked_cache_and_vertex():
    cluster, g = make_cluster(check_protocols=True)
    w0 = cluster.workers[0]
    v = next(x for x in g.vertices() if hash_partition(x, 2) == 1)
    return w0.cache, v


def test_cache_request_then_release_balances():
    cache, v = checked_cache_and_vertex()
    tid = make_task_id(0, 0)
    cache.request(v, tid)
    cache.insert_response(v, 0, (1, 2))
    assert cache.get_locked(v, tid).vid == v
    cache.release(v, tid)
    cache.assert_quiescent()


def test_cache_rejects_release_without_request():
    cache, v = checked_cache_and_vertex()
    with pytest.raises(ProtocolViolation, match="release-without-request"):
        cache.release(v, make_task_id(0, 0))


def test_cache_rejects_get_locked_without_hold():
    cache, v = checked_cache_and_vertex()
    owner = make_task_id(0, 0)
    cache.request(v, owner)
    cache.insert_response(v, 0, (1, 2))
    with pytest.raises(ProtocolViolation, match="no ledger lock"):
        cache.get_locked(v, make_task_id(1, 0))  # a task with no hold
    cache.release(v, owner)


def test_cache_rejects_anonymous_request():
    cache, v = checked_cache_and_vertex()
    with pytest.raises(ProtocolViolation, match="without a task id"):
        cache.request(v, -1)


def test_cache_quiescence_reports_leaked_locks():
    cache, v = checked_cache_and_vertex()
    cache.request(v, make_task_id(0, 0))
    cache.insert_response(v, 0, (1, 2))
    with pytest.raises(ProtocolViolation, match="ledger not empty"):
        cache.assert_quiescent()


# -- single-writer guards ----------------------------------------------------


def test_single_writer_guard_detects_overlap():
    guard = SingleWriterGuard("test-section")
    inside = threading.Event()
    release = threading.Event()

    def hold():
        with guard.entered():
            inside.set()
            release.wait(5)

    holder = threading.Thread(target=hold)
    holder.start()
    try:
        assert inside.wait(5)
        with pytest.raises(ProtocolViolation, match="concurrent mutation"):
            with guard.entered():
                pass
    finally:
        release.set()
        holder.join(5)
    with guard.entered():  # recovers once the writer leaves
        pass


def test_single_writer_guard_is_reentrant():
    guard = SingleWriterGuard("test-section")
    with guard.entered():
        with guard.entered():
            pass
    with guard.entered():
        pass


def test_checked_task_queue_guards_mutations():
    q = CheckedTaskQueue(batch_size=2)
    inside = threading.Event()
    release = threading.Event()

    def slow_append():
        with q.guard.entered():
            inside.set()
            release.wait(5)

    writer = threading.Thread(target=slow_append)
    writer.start()
    try:
        assert inside.wait(5)
        with pytest.raises(ProtocolViolation):
            q.append(Task())
    finally:
        release.set()
        writer.join(5)
    assert len(q) == 0  # reads stay unguarded
    q.append(Task())
    assert q.pop() is not None


# -- the interleaving fuzzer -------------------------------------------------

FUZZ_GRAPH = erdos_renyi(40, 0.15, seed=5)
FUZZ_TRIANGLES = count_triangles(FUZZ_GRAPH)
FUZZ_CLIQUE = len(max_clique_reference(FUZZ_GRAPH))
FUZZ_HOPS = hop_sum_oracle(FUZZ_GRAPH)


def checked_config(seed):
    return GThinkerConfig(
        num_workers=2,
        compers_per_worker=2,
        task_batch_size=2,
        cache_capacity=48,
        cache_buckets=8,
        decompose_threshold=16,
        check_protocols=True,
        seed=seed,
    )


def test_checked_runtime_is_deterministic_per_seed():
    results = [
        run_job(HopSumComper, FUZZ_GRAPH, checked_config(9), runtime="checked")
        for _ in range(2)
    ]
    assert results[0].aggregate == results[1].aggregate == FUZZ_HOPS
    assert (
        results[0].metrics["tasks:iterations"]
        == results[1].metrics["tasks:iterations"]
    )


def test_checked_runtime_forces_checkers_on():
    cfg = checked_config(0).with_updates(check_protocols=False)
    result = run_job(TriangleCountComper, FUZZ_GRAPH, cfg, runtime="checked")
    assert result.aggregate == FUZZ_TRIANGLES


@pytest.mark.parametrize("seed", range(20))
def test_fuzz_triangle_count(seed):
    result = run_job(
        TriangleCountComper, FUZZ_GRAPH, checked_config(seed), runtime="checked"
    )
    assert result.aggregate == FUZZ_TRIANGLES


@pytest.mark.parametrize("seed", range(20))
def test_fuzz_max_clique(seed):
    result = run_job(
        MaxCliqueComper, FUZZ_GRAPH, checked_config(seed), runtime="checked"
    )
    assert len(result.aggregate or ()) == FUZZ_CLIQUE


@pytest.mark.parametrize("seed", range(20))
def test_fuzz_yield_heavy_walks(seed):
    result = run_job(
        HopSumComper, FUZZ_GRAPH, checked_config(seed), runtime="checked"
    )
    assert result.aggregate == FUZZ_HOPS
