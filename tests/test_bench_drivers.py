"""Smoke tests for the benchmark drivers (tiny scales for speed)."""

import pytest

from repro.bench import (
    bench_config,
    fig2_crossover,
    gm_query,
    render_table,
    single_machine_comparison,
    table1_features,
    table2_datasets,
    table3_distributed,
    table5a_cache_capacity,
    table5b_alpha,
)
from repro.bench.tables import format_bytes, format_seconds


def test_render_table_alignment():
    text = render_table("T", ["a", "bb"], [[1, 22], [333, 4]])
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[2] and "bb" in lines[2]
    assert len({len(l) for l in lines[2:5]}) == 1  # aligned widths


def test_format_seconds():
    assert format_seconds(None) == "-"
    assert format_seconds(0.0021) == "2.1 ms"
    assert format_seconds(2.5) == "2.50 s"
    assert format_seconds(7200) == "2.0 h"


def test_format_bytes():
    assert format_bytes(None) == "-"
    assert format_bytes(512) == "512 B"
    assert format_bytes(2048) == "2.00 KB"
    assert format_bytes(3 << 20) == "3.00 MB"
    assert format_bytes(5 << 30) == "5.00 GB"


def test_bench_config_overrides():
    cfg = bench_config(2, 3, cache_capacity=77)
    assert cfg.num_workers == 2
    assert cfg.compers_per_worker == 3
    assert cfg.cache_capacity == 77


def test_gm_query_shape():
    q = gm_query()
    assert q.num_vertices == 4
    assert len(list(q.graph.edges())) == 4


def test_table1_rows():
    headers, rows = table1_features()
    assert headers[0] == "system"
    assert len(headers) == 8
    assert {r[0] for r in rows} >= {"gthinker", "gminer", "arabesque"}


def test_table2_small_scale():
    headers, rows = table2_datasets(scale=0.1)
    assert len(rows) == 5
    assert all(int(r[1]) > 0 for r in rows)


def test_fig2_small():
    headers, rows = fig2_crossover(sizes=(4, 16, 48))
    assert len(rows) == 3
    ratios = [float(r[3]) for r in rows]
    assert ratios[-1] > ratios[0]


@pytest.mark.slow
def test_table3_one_dataset():
    headers, rows = table3_distributed(
        scale=0.2, machines=2, compers=2, datasets=("youtube",)
    )
    assert len(rows) == 3  # MCF, TC, GM
    assert rows[0][0] == "MCF"


def test_table5a_small():
    headers, rows = table5a_cache_capacity(scale=0.15)
    assert len(rows) == 4


def test_table5b_small():
    headers, rows = table5b_alpha(scale=0.15)
    assert [r[0] for r in rows] == [0.002, 0.02, 0.2, 2.0]


def test_single_machine_small():
    headers, rows = single_machine_comparison(scale=0.15)
    experiments = {r[0] for r in rows}
    assert experiments == {"TC", "MCF"}
