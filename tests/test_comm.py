"""Unit tests for the per-worker communication service."""

import pytest

from repro.core.api import Comper, Task, VertexView
from repro.core.config import GThinkerConfig
from repro.core.job import build_cluster
from repro.graph import Graph, hash_partition
from repro.net import RequestBatch, ResponseBatch, TaskBatchTransfer


class Quiet(Comper):
    def task_spawn(self, v):
        pass

    def compute(self, task, frontier):
        return False


def make_cluster(num_workers=2, **overrides):
    g = Graph.from_edges([(i, i + 1) for i in range(30)])
    cfg = GThinkerConfig(num_workers=num_workers, compers_per_worker=1,
                         task_batch_size=4, cache_capacity=64, cache_buckets=8,
                         **overrides)
    return build_cluster(Quiet, g, cfg), g


def remote_vertex_of(worker, graph):
    """Some graph vertex not owned by `worker`."""
    return next(
        v for v in graph.vertices()
        if hash_partition(v, worker.num_workers) != worker.worker_id
    )


def test_queue_and_flush_batches():
    (cluster, g) = make_cluster()
    w0 = cluster.workers[0]
    v = remote_vertex_of(w0, g)
    w0.comm.queue_request(v)
    w0.comm.queue_request(v)  # second pull of the same vertex is deduped
    assert w0.comm.pending_outgoing() == 1
    assert cluster.metrics.get("comm:requests_deduped") == 1
    assert cluster.metrics.get("comm:requests_queued") == 1
    w0.comm.step()
    assert w0.comm.pending_outgoing() == 0
    owner = cluster.workers[hash_partition(v, 2)]
    msgs = cluster.transport.poll(owner.worker_id)
    assert len(msgs) == 1  # one batch with one (dedup'd) id
    assert msgs[0].vertex_ids == [v]


def test_queue_requests_bulk_dedups_across_destinations():
    (cluster, g) = make_cluster()
    w0 = cluster.workers[0]
    remote = [v for v in g.vertices() if not w0.owns_vertex(v)][:6]
    w0.comm.queue_requests(remote + remote[:3])
    assert w0.comm.pending_outgoing() == len(remote)
    assert cluster.metrics.get("comm:requests_deduped") == 3
    # The dedup window resets at flush: a re-request after the batch is
    # on the wire queues again (the R-table suppresses real duplicates).
    w0.comm.step()
    w0.comm.queue_request(remote[0])
    assert w0.comm.pending_outgoing() == 1


def test_request_served_from_local_table():
    (cluster, g) = make_cluster()
    w0, w1 = cluster.workers
    v = next(x for x in g.vertices() if w1.owns_vertex(x))
    cluster.transport.send(RequestBatch(src=0, dst=1, vertex_ids=[v]))
    w1.comm.step()  # serves the request
    responses = cluster.transport.poll(0)
    assert len(responses) == 1
    (vid, label, adj) = responses[0].vertices[0]
    assert vid == v
    assert tuple(adj) == g.neighbors(v)


def test_response_chunking():
    (cluster, g) = make_cluster(response_chunk=4)
    w0, w1 = cluster.workers
    owned = [v for v in g.vertices() if w1.owns_vertex(v)]
    assert len(owned) > 4
    cluster.transport.send(RequestBatch(src=0, dst=1, vertex_ids=owned))
    w1.comm.step()
    responses = cluster.transport.poll(0)
    assert len(responses) >= 2
    assert sum(len(r.vertices) for r in responses) == len(owned)
    served = [vid for r in responses for (vid, _l, _a) in r.vertices]
    assert served == owned


def test_serve_dedups_duplicate_ids_in_batch():
    (cluster, g) = make_cluster()
    w0, w1 = cluster.workers
    owned = [v for v in g.vertices() if w1.owns_vertex(v)][:5]
    cluster.transport.send(
        RequestBatch(src=0, dst=1, vertex_ids=owned + owned)
    )
    w1.comm.step()
    responses = cluster.transport.poll(0)
    served = [vid for r in responses for (vid, _l, _a) in r.vertices]
    assert served == owned  # each unique vertex answered exactly once
    assert cluster.metrics.get("comm:requests_served") == len(owned)
    assert cluster.metrics.get("comm:requests_deduped") == len(owned)


def test_response_wakes_pending_task():
    (cluster, g) = make_cluster()
    w0 = cluster.workers[0]
    engine = w0.engines[0]
    v = remote_vertex_of(w0, g)
    task = Task(context="x")
    task.pull(v)
    engine.add_task(task)
    assert engine.step()  # pop -> park + request
    assert len(engine.t_task) == 1
    w0.comm.step()  # flush the request
    owner = cluster.workers[hash_partition(v, 2)]
    owner.comm.step()  # serve it
    w0.comm.step()  # receive: cache insert + notify
    assert len(engine.t_task) == 0
    assert len(engine.b_task) == 1
    assert engine.b_task.get() is task


def test_task_batch_lands_in_lfile():
    (cluster, g) = make_cluster()
    from repro.core.containers import serialize_tasks

    payload = serialize_tasks([Task(context=1), Task(context=2)])
    cluster.transport.send(
        TaskBatchTransfer(src=1, dst=0, payload=payload, num_tasks=2)
    )
    w0 = cluster.workers[0]
    w0.comm.step()
    assert w0.l_file.num_tasks_on_disk() == 2
    tasks = w0.l_file.take_file()
    assert [t.context for t in tasks] == [1, 2]


def test_unknown_message_type_rejected():
    (cluster, g) = make_cluster()

    class Weird:
        src, dst = 0, 0

        def size_bytes(self):
            return 0

    cluster.transport._mailboxes[0].queue.append((0.0, Weird()))
    with pytest.raises(TypeError):
        cluster.workers[0].comm._dispatch(Weird(), now=0.0)
