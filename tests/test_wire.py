"""Tests for the binary IPC wire format and the binary task codec."""

import pickle

import numpy as np
import pytest

from repro.core.api import Task
from repro.core.containers import deserialize_tasks, serialize_tasks
from repro.net import wire
from repro.net.message import (
    Message,
    RequestBatch,
    ResponseBatch,
    TaskBatchTransfer,
)


def _roundtrip(messages):
    return wire.decode_batch(wire.encode_batch(messages))


def test_request_batch_roundtrip():
    (out,) = _roundtrip([RequestBatch(src=2, dst=5, vertex_ids=[9, 1, 9])])
    assert (out.src, out.dst) == (2, 5)
    assert out.vertex_ids == [9, 1, 9]
    assert all(type(v) is int for v in out.vertex_ids)


def test_response_batch_roundtrip_mixed_row_types():
    msg = ResponseBatch(src=0, dst=1, vertices=[
        (5, 0, np.array([1, 2, 3], dtype=np.int64)),
        (7, 4, ()),                     # empty tuple row
        (9, 0, (2, 4, 6)),              # tuple row
        (11, 2, np.empty(0, dtype=np.int64)),
    ])
    (out,) = _roundtrip([msg])
    rows = {v: (label, adj) for v, label, adj in out.vertices}
    assert rows[5][1].tolist() == [1, 2, 3]
    assert rows[7][0] == 4 and rows[7][1].size == 0
    assert rows[9][1].tolist() == [2, 4, 6]
    assert rows[11][0] == 2 and rows[11][1].size == 0
    # ids/labels come back as python ints, adjacency as read-only int64
    for v, label, adj in out.vertices:
        assert type(v) is int and type(label) is int
        assert isinstance(adj, np.ndarray) and adj.dtype == np.int64
        assert not adj.flags.writeable


def test_decoded_rows_are_views_into_one_buffer():
    msg = ResponseBatch(src=0, dst=1, vertices=[
        (1, 0, np.arange(10, dtype=np.int64)),
        (2, 0, np.arange(20, dtype=np.int64)),
    ])
    (out,) = _roundtrip([msg])
    a = out.vertices[0][2]
    b = out.vertices[1][2]
    assert a.base is not None and b.base is not None  # zero-copy frombuffer


def test_task_transfer_roundtrip_unaligned_payload():
    for payload in (b"", b"x", b"12345678", b"123456789"):
        (out,) = _roundtrip([TaskBatchTransfer(src=1, dst=0, payload=payload,
                                               num_tasks=3)])
        assert out.payload == payload
        assert out.num_tasks == 3


def test_unknown_message_type_falls_back_to_pickle_frame():
    (out,) = _roundtrip([Message(src=3, dst=4)])
    assert type(out) is Message and (out.src, out.dst) == (3, 4)


def test_mixed_batch_preserves_order():
    msgs = [
        RequestBatch(src=0, dst=1, vertex_ids=[1]),
        ResponseBatch(src=1, dst=0, vertices=[(1, 0, (2,))]),
        TaskBatchTransfer(src=0, dst=1, payload=b"abc", num_tasks=1),
    ]
    out = _roundtrip(msgs)
    assert [type(m) for m in out] == [type(m) for m in msgs]


def test_decode_sniffs_pickled_payloads():
    msgs = [RequestBatch(src=0, dst=1, vertex_ids=[4, 5])]
    payload = pickle.dumps(msgs, protocol=pickle.HIGHEST_PROTOCOL)
    out = wire.decode_batch(payload)
    assert out[0].vertex_ids == [4, 5]


def test_binary_response_payload_smaller_than_pickle():
    """The struct-of-arrays frame beats pickling ndarray rows."""
    rng = np.random.default_rng(3)
    vertices = [
        (int(v), 0, np.unique(rng.integers(0, 10**6, size=30)))
        for v in range(64)
    ]
    msgs = [ResponseBatch(src=0, dst=1, vertices=vertices)]
    binary = wire.encode_batch(msgs)
    pickled = pickle.dumps(msgs, protocol=pickle.HIGHEST_PROTOCOL)
    assert len(binary) < len(pickled)


# -- task codec -------------------------------------------------------------


def test_task_codec_roundtrip():
    t = Task(context=(3, 4))
    t.pull(10)
    t.pull(11)
    t.g.add_vertex(1, (2, 3), label=7)
    t.g.add_vertex(2, np.array([1, 3], dtype=np.int64))
    payload = serialize_tasks([t])
    assert payload[:8] == b"GTTASK1\x00"
    (out,) = deserialize_tasks(payload)
    assert out.context == (3, 4)
    assert out.pending_pulls() == (10, 11)
    assert out.g.neighbors(1) == (2, 3)
    assert out.g.label(1) == 7
    assert out.g.neighbors(2) == (1, 3)
    assert out.g.label(2) == 0
    assert out.task_id == -1


def test_task_codec_context_kinds():
    cases = [None, 5, (1, 2), {"rich": [1]}, "str", (1, "mixed")]
    payload = serialize_tasks([Task(context=c) for c in cases])
    out = deserialize_tasks(payload)
    assert [t.context for t in out] == cases


def test_task_codec_invalidates_task_ids():
    t = Task(context=1)
    t.task_id = 0xBEEF
    deserialize_tasks(serialize_tasks([t]))
    assert t.task_id == -1  # invalidated in place, as before


def test_task_codec_pickle_fallback_for_inflight_pulls():
    t = Task(context=1)
    t.pulls_in_flight = [42]
    payload = serialize_tasks([t])
    assert payload[:8] != b"GTTASK1\x00"
    (out,) = deserialize_tasks(payload)
    assert out.pulls_in_flight == [42]


def test_task_codec_legacy_pickle_payload_decodes():
    t = Task(context=9)
    legacy = pickle.dumps([t], protocol=pickle.HIGHEST_PROTOCOL)
    (out,) = deserialize_tasks(legacy)
    assert out.context == 9


# ---------------------------------------------------------------------------
# Decode hardening: truncated / corrupt payloads raise WireDecodeError
# ---------------------------------------------------------------------------


def _messages_equal(a, b):
    if type(a) is not type(b):
        return False
    if isinstance(a, RequestBatch):
        return (a.src, a.dst, list(a.vertex_ids)) == (b.src, b.dst,
                                                      list(b.vertex_ids))
    if isinstance(a, ResponseBatch):
        return (a.src, a.dst) == (b.src, b.dst) and [
            (v, l, adj.tolist()) for v, l, adj in a.vertices
        ] == [(v, l, adj.tolist()) for v, l, adj in b.vertices]
    if isinstance(a, TaskBatchTransfer):
        return (a.src, a.dst, a.num_tasks, bytes(a.payload)) == (
            b.src, b.dst, b.num_tasks, bytes(b.payload))
    return a.src == b.src and a.dst == b.dst


class _OddMessage(Message):
    """A message type without a dedicated frame (pickle fallback)."""

    def __init__(self, src, dst, blob):
        super().__init__(src=src, dst=dst)
        self.blob = blob


_FRAME_CASES = {
    "request": [RequestBatch(src=0, dst=1, vertex_ids=[9, 1, 9])],
    "response": [ResponseBatch(src=0, dst=1, vertices=[
        (5, 0, np.array([1, 2, 3], dtype=np.int64)),
        (7, 4, ()),
    ])],
    "tasks": [TaskBatchTransfer(src=1, dst=0, payload=b"abcde", num_tasks=2)],
    "pickle": [_OddMessage(src=0, dst=1, blob={"k": [1, 2]})],
    "mixed": [
        RequestBatch(src=0, dst=1, vertex_ids=[4]),
        ResponseBatch(src=1, dst=0, vertices=[(4, 0, np.array([5],
                                                             dtype=np.int64))]),
        TaskBatchTransfer(src=1, dst=0, payload=b"xyz", num_tasks=1),
        _OddMessage(src=0, dst=1, blob=None),
    ],
}


@pytest.mark.parametrize("kind", sorted(_FRAME_CASES))
def test_truncation_at_every_boundary_raises_or_decodes_whole(kind):
    """Cutting the payload at *every* byte offset must either raise the
    typed WireDecodeError or — when the cut only removed trailing
    alignment padding — decode to the identical batch.  No raw
    struct/numpy/pickle errors may escape."""
    msgs = _FRAME_CASES[kind]
    payload = wire.encode_batch(msgs)
    full = wire.decode_batch(payload)
    clean_decodes = 0
    for cut in range(len(payload)):
        try:
            decoded = wire.decode_batch(payload[:cut])
        except wire.WireDecodeError:
            continue
        clean_decodes += 1
        assert len(decoded) == len(full)
        assert all(_messages_equal(x, y) for x, y in zip(decoded, full))
    # Only padding-only cuts may decode; there are at most 7 pad bytes
    # per variable-length frame, so clean decodes are rare.
    assert clean_decodes <= 7 * len(msgs)


def test_wire_decode_error_is_value_error():
    with pytest.raises(ValueError):  # old callers guarded ValueError
        wire.decode_batch(wire.encode_batch(
            [RequestBatch(src=0, dst=1, vertex_ids=[1, 2])]
        )[:12])


def test_corrupt_magic_with_unpicklable_tail_raises():
    payload = bytearray(wire.encode_batch(
        [RequestBatch(src=0, dst=1, vertex_ids=[1])]
    ))
    payload[0] ^= 0xFF  # not MAGIC, not a valid pickle either
    with pytest.raises(wire.WireDecodeError):
        wire.decode_batch(bytes(payload))


def test_pickled_non_list_payload_raises():
    with pytest.raises(wire.WireDecodeError):
        wire.decode_batch(pickle.dumps({"not": "a batch"}))


def test_empty_payload_raises():
    with pytest.raises(wire.WireDecodeError):
        wire.decode_batch(b"")


def _header(*values):
    return np.array(values, dtype="<i8").tobytes()


def test_negative_message_count_raises():
    with pytest.raises(wire.WireDecodeError):
        wire.decode_batch(wire.MAGIC + _header(-1))


def test_negative_id_count_raises():
    payload = wire.MAGIC + _header(1) + _header(1, 0, 1) + _header(-4)
    with pytest.raises(wire.WireDecodeError):
        wire.decode_batch(payload)


def test_negative_response_degree_raises():
    # One response frame, one vertex, degree -1: a negative cumsum would
    # otherwise produce nonsense adjacency slices.
    payload = (wire.MAGIC + _header(1) + _header(2, 0, 1) + _header(1)
               + _header(7) + _header(0) + _header(-1))
    with pytest.raises(wire.WireDecodeError):
        wire.decode_batch(payload)


def test_unknown_frame_kind_raises():
    payload = wire.MAGIC + _header(1) + _header(99, 0, 1)
    with pytest.raises(wire.WireDecodeError):
        wire.decode_batch(payload)


def test_count_pointing_past_buffer_raises():
    # Claims 1 << 40 vertex ids but provides none.
    payload = wire.MAGIC + _header(1) + _header(1, 0, 1) + _header(1 << 40)
    with pytest.raises(wire.WireDecodeError):
        wire.decode_batch(payload)
