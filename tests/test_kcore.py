"""Tests for k-core decomposition and degeneracy utilities."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import (
    Graph,
    core_numbers,
    degeneracy,
    degeneracy_order,
    erdos_renyi,
    greedy_clique_seed,
    plant_clique,
    ring_of_cliques,
)

from tests.oracles import nx_of


def test_core_numbers_clique():
    g = ring_of_cliques(1, 6)
    assert all(k == 5 for k in core_numbers(g).values())


def test_core_numbers_path():
    g = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
    assert all(k == 1 for k in core_numbers(g).values())


def test_core_numbers_empty():
    assert core_numbers(Graph()) == {}


def test_core_numbers_vs_networkx(er_graph):
    import networkx as nx

    assert core_numbers(er_graph) == nx.core_number(nx_of(er_graph))


def test_degeneracy_order_complete(er_graph):
    order = degeneracy_order(er_graph)
    assert sorted(order) == sorted(er_graph.vertices())


def test_degeneracy_order_property(er_graph):
    """Every vertex has at most `degeneracy` neighbors after it."""
    order = degeneracy_order(er_graph)
    pos = {v: i for i, v in enumerate(order)}
    d = degeneracy(er_graph)
    for v in order:
        later = sum(1 for u in er_graph.neighbors(v) if pos[u] > pos[v])
        assert later <= d


def test_degeneracy_equals_max_core(er_graph):
    assert degeneracy(er_graph) == max(core_numbers(er_graph).values())


def test_greedy_seed_is_clique():
    g, _members = plant_clique(erdos_renyi(80, 0.06, seed=4), 9, seed=5)
    seed = greedy_clique_seed(g)
    assert len(seed) >= 2
    for i, u in enumerate(seed):
        for v in seed[i + 1:]:
            assert g.has_edge(u, v)


def test_greedy_seed_finds_planted():
    g, members = plant_clique(erdos_renyi(100, 0.04, seed=1), 10, seed=2)
    assert len(greedy_clique_seed(g)) >= 8  # greedy may miss a little


def test_greedy_seed_empty_graph():
    assert greedy_clique_seed(Graph()) == ()


@settings(max_examples=25, deadline=None)
@given(st.integers(3, 40), st.floats(0.02, 0.5), st.integers(0, 40))
def test_core_numbers_property(n, p, seed):
    import networkx as nx

    g = erdos_renyi(n, p, seed=seed)
    assert core_numbers(g) == nx.core_number(nx_of(g))


def test_mcf_with_core_pruning_and_seed():
    """The accelerated MCF variant gives the same answer as Fig. 5."""
    from repro.apps import MaxCliqueComper
    from repro.core import GThinkerConfig, run_job

    g, _ = plant_clique(erdos_renyi(90, 0.08, seed=9), 9, seed=10)
    cfg = GThinkerConfig(num_workers=2, compers_per_worker=2,
                         task_batch_size=4, cache_capacity=64)
    plain = run_job(MaxCliqueComper, g, cfg)
    cores = core_numbers(g)
    seed = greedy_clique_seed(g)
    fast = run_job(
        lambda: MaxCliqueComper(core_numbers=cores, initial_clique=seed), g, cfg
    )
    assert len(fast.aggregate) == len(plain.aggregate)
