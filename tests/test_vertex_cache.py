"""Tests for the concurrent remote-vertex cache (OP1-OP4, Fig. 6)."""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import CacheProtocolError
from repro.core.vertex_cache import RequestOutcome, VertexCache


def make_cache(capacity=100, buckets=8, alpha=0.2, delta=1):
    return VertexCache(
        num_buckets=buckets, capacity=capacity, overflow_alpha=alpha,
        count_delta=delta,
    )


class TestOP1Request:
    def test_first_request_is_miss_send(self):
        c = make_cache()
        out = c.request(5, task_id=1)
        assert out.status == RequestOutcome.MISS_SEND

    def test_duplicate_request_suppressed(self):
        """Desirability 3: no duplicate network request for a vertex."""
        c = make_cache()
        assert c.request(5, 1).status == RequestOutcome.MISS_SEND
        assert c.request(5, 2).status == RequestOutcome.MISS_DUPLICATE
        assert c.request(5, 3).status == RequestOutcome.MISS_DUPLICATE

    def test_hit_after_response(self):
        c = make_cache()
        c.request(5, 1)
        c.insert_response(5, 0, (1, 2))
        out = c.request(5, 2)
        assert out.status == RequestOutcome.HIT
        assert tuple(out.entry.adj) == (1, 2)

    def test_hit_increments_lock_count(self):
        c = make_cache()
        c.request(5, 1)
        c.insert_response(5, 0, ())
        c.request(5, 2)
        entry = c.get_locked(5)
        assert entry.lock_count == 2

    def test_hit_removes_from_zero_table(self):
        c = make_cache()
        c.request(5, 1)
        c.insert_response(5, 0, ())
        c.release(5)  # lock_count -> 0, enters Z-table
        c.request(5, 2)  # back out of Z-table
        c.check_invariants()
        assert c.evict(10) == 0  # nothing evictable while locked


class TestOP2Response:
    def test_transfers_waiting_tasks(self):
        c = make_cache()
        c.request(7, 11)
        c.request(7, 22)
        waiting = c.insert_response(7, 3, (1,))
        assert waiting == [11, 22]
        entry = c.get_locked(7)
        assert entry.lock_count == 2
        assert entry.label == 3

    def test_response_without_request_rejected(self):
        c = make_cache()
        with pytest.raises(CacheProtocolError):
            c.insert_response(9, 0, ())

    def test_double_response_rejected(self):
        c = make_cache()
        c.request(9, 1)
        c.insert_response(9, 0, ())
        with pytest.raises(CacheProtocolError):
            c.insert_response(9, 0, ())

    def test_size_unchanged_by_response(self):
        c = make_cache(delta=1)
        c.request(9, 1)
        before = c.size_estimate
        c.insert_response(9, 0, ())
        assert c.size_estimate == before


class TestOP3Release:
    def test_release_to_zero_enables_eviction(self):
        c = make_cache()
        c.request(5, 1)
        c.insert_response(5, 0, ())
        c.release(5)
        assert c.evict(10) == 1
        # Gone: a new request is a miss again.
        assert c.request(5, 2).status == RequestOutcome.MISS_SEND

    def test_release_unlocked_rejected(self):
        c = make_cache()
        with pytest.raises(CacheProtocolError):
            c.release(5)

    def test_over_release_rejected(self):
        c = make_cache()
        c.request(5, 1)
        c.insert_response(5, 0, ())
        c.release(5)
        with pytest.raises(CacheProtocolError):
            c.release(5)


class TestOP4Evict:
    def test_evicts_only_unlocked(self):
        c = make_cache()
        for v in range(10):
            c.request(v, v)
            c.insert_response(v, 0, ())
        for v in range(5):
            c.release(v)
        assert c.evict(100) == 5
        c.check_invariants()

    def test_evict_respects_limit(self):
        c = make_cache()
        for v in range(10):
            c.request(v, v)
            c.insert_response(v, 0, ())
            c.release(v)
        assert c.evict(3) == 3
        assert c.exact_size() == 7

    def test_default_eviction_clears_overflow(self):
        c = make_cache(capacity=4, delta=1)
        for v in range(10):
            c.request(v, v)
            c.insert_response(v, 0, ())
            c.release(v)
        assert c.size_estimate == 10
        c.evict()
        assert c.size_estimate <= 4


class TestSizeAccounting:
    def test_exact_size_counts_gamma_and_r_tables(self):
        c = make_cache()
        c.request(1, 1)           # R-table
        c.request(2, 2)
        c.insert_response(2, 0, ())  # Γ-table
        assert c.exact_size() == 2

    def test_delta_commit_threshold(self):
        """With δ=3, the shared counter lags until 3 local ops happen."""
        c = make_cache(delta=3)
        c.request(1, 1)
        c.request(2, 2)
        assert c.size_estimate == 0  # still thread-local
        c.request(3, 3)
        assert c.size_estimate == 3  # committed at ±δ

    def test_flush_local_counter(self):
        c = make_cache(delta=100)
        c.request(1, 1)
        assert c.size_estimate == 0
        c.flush_local_counter()
        assert c.size_estimate == 1

    def test_estimate_error_bounded_by_delta(self):
        c = make_cache(delta=5)
        for v in range(23):
            c.request(v, v)
        assert abs(c.size_estimate - c.exact_size()) < 5

    def test_overflow_flag(self):
        c = make_cache(capacity=10, alpha=0.2, delta=1)
        for v in range(12):
            c.request(v, v)
        assert not c.overflowed()  # 12 <= 1.2 * 10
        c.request(99, 99)
        assert c.overflowed()


class TestConcurrency:
    def test_parallel_mixed_operations(self):
        """Full OP1-4 lifecycle from 8 threads; invariants must hold."""
        c = make_cache(capacity=10_000, buckets=64, delta=4)
        errors = []

        def worker(tid):
            try:
                base = tid * 1000
                for i in range(300):
                    v = base + i
                    assert c.request(v, tid).status == RequestOutcome.MISS_SEND
                    c.insert_response(v, 0, (1, 2))
                    assert c.get_locked(v).vid == v
                    c.release(v)
                c.flush_local_counter()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        c.check_invariants()
        assert c.exact_size() == 8 * 300
        assert c.evict(10**6) == 8 * 300

    def test_contended_single_vertex(self):
        """Many threads race on one vertex: exactly one MISS_SEND."""
        c = make_cache()
        outcomes = []
        lock = threading.Lock()

        def racer(tid):
            out = c.request(42, tid)
            with lock:
                outcomes.append(out.status)

        threads = [threading.Thread(target=racer, args=(t,)) for t in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert outcomes.count(RequestOutcome.MISS_SEND) == 1
        assert outcomes.count(RequestOutcome.MISS_DUPLICATE) == 15
        waiting = c.insert_response(42, 0, ())
        assert sorted(waiting) == list(range(16))


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 15), st.sampled_from(["req", "resp", "rel", "evict"])), max_size=80))
def test_random_op_sequences_preserve_invariants(ops):
    """Drive random (vertex, op) sequences; apply each op only when the
    protocol allows it, and check structural invariants throughout."""
    c = make_cache(capacity=8, buckets=4, delta=1)
    state = {}  # v -> "requested" | "cached:<locks>"
    for v, op in ops:
        if op == "req":
            out = c.request(v, task_id=v)
            if state.get(v) is None:
                assert out.status == RequestOutcome.MISS_SEND
                state[v] = ("requested", 1)
            elif state[v][0] == "requested":
                assert out.status == RequestOutcome.MISS_DUPLICATE
                state[v] = ("requested", state[v][1] + 1)
            else:
                assert out.status == RequestOutcome.HIT
                state[v] = ("cached", state[v][1] + 1)
        elif op == "resp" and state.get(v, ("", 0))[0] == "requested":
            c.insert_response(v, 0, ())
            state[v] = ("cached", state[v][1])
        elif op == "rel" and state.get(v, ("", 0))[0] == "cached" and state[v][1] > 0:
            c.release(v)
            state[v] = ("cached", state[v][1] - 1)
        elif op == "evict":
            evicted = c.evict(3)
            # Only zero-lock cached vertices can have disappeared.
            candidates = [
                u for u, (kind, locks) in state.items()
                if kind == "cached" and locks == 0
            ]
            assert evicted <= len(candidates)
            # Resync: a candidate was evicted iff it left its Γ-table.
            gone = [u for u in candidates if u not in c._bucket(u).gamma]
            assert len(gone) == evicted
            for u in gone:
                del state[u]
        c.check_invariants()
