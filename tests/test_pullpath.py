"""Pull-path regressions: lock-acquisition counts, message counts, and
the adaptive scheduling knobs (idle backoff, proportional steals).

These are the metrics-backed guarantees behind ``bench_pullpath.py``:
the bulk pull path must do the *same work* as the per-vertex path with
strictly fewer bucket-lock acquisitions, and request/serve dedup must
put strictly fewer messages on the wire.
"""

import pytest

from repro.algorithms import count_triangles
from repro.apps import TriangleCountComper
from repro.core import GThinkerConfig, run_job
from repro.core.job import build_cluster
from repro.core.master import Master
from repro.graph import erdos_renyi
from repro.net import RequestBatch
from repro.net.transport import Transport


def cfg(**kw):
    base = dict(num_workers=2, compers_per_worker=2, task_batch_size=4,
                cache_capacity=64, cache_buckets=8, decompose_threshold=16)
    base.update(kw)
    return GThinkerConfig(**base)


# -- bulk vs per-vertex: same answer, fewer lock acquisitions -----------------


def test_bulk_path_takes_strictly_fewer_bucket_locks():
    g = erdos_renyi(80, 0.15, seed=21)
    expected = count_triangles(g)
    bulk = run_job(TriangleCountComper, g, cfg(bulk_cache_ops=True))
    per_vertex = run_job(TriangleCountComper, g, cfg(bulk_cache_ops=False))
    assert bulk.aggregate == per_vertex.aggregate == expected
    a = bulk.metrics.get("cache:bucket_lock_acquisitions")
    b = per_vertex.metrics.get("cache:bucket_lock_acquisitions")
    assert a and b, "lock metric missing from job results"
    if cfg().check_enabled:
        # CheckedVertexCache decomposes every bulk call into the checked
        # per-vertex ops — that decomposition *is* the equivalence
        # contract — so under REPRO_CHECK=1 the counts match exactly.
        assert a == b, f"checked bulk path took {a} lock acquisitions vs {b}"
    else:
        assert a < b, f"bulk path took {a} lock acquisitions vs {b} per-vertex"
    # Same protocol traffic either way: the batching is invisible to the
    # OP1/OP2/OP3 ledger.
    for key in ("cache:hits", "cache:miss_first", "cache:responses"):
        assert bulk.metrics.get(key) == per_vertex.metrics.get(key), key


def test_bulk_path_same_lock_metric_under_process_runtime():
    """The process runtime commits lock metrics through the worker-side
    sync/stop handlers; the metric must survive the merge."""
    g = erdos_renyi(60, 0.15, seed=3)
    res = run_job(TriangleCountComper, g, cfg(), runtime="process")
    assert res.aggregate == count_triangles(g)
    assert res.metrics.get("cache:bucket_lock_acquisitions", 0) > 0
    assert res.metrics.get("ipc:batches", 0) > 0


# -- dedup: strictly fewer messages on the wire -------------------------------


def test_serve_dedup_sends_fewer_response_messages():
    """A duplicate-heavy request batch is answered once per unique id,
    so chunked serving emits fewer ResponseBatch messages than the
    per-vertex baseline (one answer per requested id) would."""
    g = erdos_renyi(40, 0.2, seed=5)
    cluster = build_cluster(TriangleCountComper, g, cfg(response_chunk=2))
    w1 = cluster.workers[1]
    owned = [v for v in g.vertices() if w1.owns_vertex(v)][:3]
    requested = owned * 4  # 12 ids, 3 unique
    cluster.transport.send(RequestBatch(src=0, dst=1, vertex_ids=requested))
    w1.comm.step()
    responses = cluster.transport.poll(0)
    baseline_msgs = -(-len(requested) // 2)  # ceil(12/2) without dedup
    assert len(responses) == 2 < baseline_msgs  # ceil(3/2)
    served = [v for r in responses for (v, _l, _a) in r.vertices]
    assert served == owned
    assert cluster.metrics.get("comm:requests_served") == len(owned)


def test_queue_dedup_sends_fewer_request_ids():
    g = erdos_renyi(40, 0.2, seed=5)
    cluster = build_cluster(TriangleCountComper, g, cfg())
    w0 = cluster.workers[0]
    remote = [v for v in g.vertices() if not w0.owns_vertex(v)][:4]
    w0.comm.queue_requests(remote * 3)  # per-vertex baseline: 12 queued
    assert w0.comm.pending_outgoing() == len(remote)
    w0.comm.step()
    dst = remote[0] % 2
    msgs = cluster.transport.poll(dst)
    assert sum(len(m.vertex_ids) for m in msgs) <= len(remote)
    assert cluster.metrics.get("comm:requests_deduped") == 2 * len(remote)


# -- adaptive scheduling: proportional steals with hysteresis -----------------


class StubLFile:
    def take_payload(self):
        return None


class StubWorker:
    """Just enough Worker surface for Master's steal planner."""

    def __init__(self, worker_id, workload):
        self.worker_id = worker_id
        self.workload = workload
        self.l_file = StubLFile()
        self.spawn_requests = []

    def remaining_workload_estimate(self):
        return self.workload

    def spawn_batch_payload(self, max_tasks):
        self.spawn_requests.append(max_tasks)
        return (b"x" * max_tasks, max_tasks)


def make_master(workloads, config, last_pairs=None):
    workers = [StubWorker(i, wl) for i, wl in enumerate(workloads)]
    transport = Transport(num_workers=len(workers))
    master = Master.__new__(Master)
    master.workers = workers
    master.transport = transport
    master.config = config
    master.metrics = transport._metrics
    if last_pairs is not None:
        master._last_steal_pairs = frozenset(last_pairs)
    return master, workers, transport


def test_steal_amount_proportional_to_gap():
    config = cfg(task_batch_size=4, steal_batches=2)
    master, workers, transport = make_master([0, 100], config)
    master._plan_and_execute_steals(now=0.0)
    # gap 100 -> amount min(gap // 4, steal_batches * batch) = 8 per move.
    assert workers[1].spawn_requests == [8, 8]
    assert master.metrics.get("steal:tasks") == 16
    assert len(transport.poll(0)) == 2  # both batches shipped to worker 0


def test_steal_at_least_one_batch_for_small_gaps():
    config = cfg(task_batch_size=4, steal_batches=2)
    master, workers, _t = make_master([0, 12], config)
    master._plan_and_execute_steals(now=0.0)
    # gap 12 > 2 * batch, but gap // 4 == 3 < batch: floor at one batch.
    assert workers[1].spawn_requests[0] == 4


def test_no_steal_when_gap_within_hysteresis_band():
    config = cfg(task_batch_size=4, steal_batches=2)
    master, workers, _t = make_master([10, 16], config)
    master._plan_and_execute_steals(now=0.0)
    assert workers[1].spawn_requests == []  # gap 6 <= 2 * batch


def test_steal_pair_not_reversed_next_sweep():
    """A pair that moved work 1 -> 0 last sweep must not ship it straight
    back 0 -> 1 this sweep, even if the imbalance flipped."""
    config = cfg(task_batch_size=4, steal_batches=2)
    master, workers, _t = make_master(
        [100, 0], config, last_pairs={(1, 0)}  # last sweep: victim 1, thief 0
    )
    master._plan_and_execute_steals(now=0.0)
    assert workers[0].spawn_requests == []
    # The sweep after that is free to steal again.
    master._plan_and_execute_steals(now=0.0)
    assert workers[0].spawn_requests == [8, 8]


def test_steal_pair_same_direction_not_blocked():
    config = cfg(task_batch_size=4, steal_batches=1)
    master, workers, _t = make_master(
        [0, 100], config, last_pairs={(1, 0)}  # same direction as now
    )
    master._plan_and_execute_steals(now=0.0)
    assert workers[1].spawn_requests == [4]  # capped at steal_batches * batch


# -- config knobs -------------------------------------------------------------


def test_idle_sleep_must_be_positive():
    with pytest.raises(ValueError, match="idle_sleep_s"):
        cfg(idle_sleep_s=0.0)


def test_backoff_max_must_cover_idle_sleep():
    with pytest.raises(ValueError, match="idle_backoff_max_s"):
        cfg(idle_sleep_s=0.01, idle_backoff_max_s=0.001)


def test_response_chunk_must_be_positive():
    with pytest.raises(ValueError, match="response_chunk"):
        cfg(response_chunk=0)


def test_pull_path_defaults():
    c = cfg()
    assert c.bulk_cache_ops is True
    assert c.response_chunk == 4096
    assert c.idle_backoff_max_s >= c.idle_sleep_s > 0
