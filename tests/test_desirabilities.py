"""Executable Table I: each of the seven desirabilities (§III) mapped to
an observable property of *this* implementation.

These are the integration-level claims the paper makes about G-thinker;
Table I says only G-thinker has all seven.
"""

import pytest

from repro.algorithms import count_triangles
from repro.apps import MaxCliqueComper, TriangleCountComper
from repro.core import GThinkerConfig, run_job
from repro.core.job import build_cluster
from repro.core.runtime import SerialRuntime
from repro.graph import erdos_renyi, make_dataset


def cfg(**kw):
    base = dict(num_workers=3, compers_per_worker=2, task_batch_size=4,
                cache_capacity=48, cache_buckets=16, cache_count_delta=1,
                decompose_threshold=16, sync_every_rounds=8)
    base.update(kw)
    return GThinkerConfig(**base)


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(140, 0.1, seed=3)


@pytest.fixture(scope="module")
def mcf_run(graph):
    return run_job(MaxCliqueComper, graph, cfg())


@pytest.fixture(scope="module")
def tc_run(graph):
    return run_job(TriangleCountComper, graph, cfg())


def test_d1_bounded_memory(graph):
    """D1: only a bounded pool of tasks + bounded cache in memory.

    The cache never holds (observably) more than (1+α)·c_cache plus the
    in-iteration slack, and per-comper task containers respect their
    capacities — we check the strongest cheap proxy: the modeled peak
    memory is far below materializing all subgraphs at once.
    """
    from repro.core.metrics import WorkerMemoryModel

    res = run_job(TriangleCountComper, graph, cfg(cache_capacity=16))
    # All task subgraphs together would be O(sum deg^2); the engine's
    # modeled peak (minus the fixed process baseline) must stay well
    # under materializing them all at once.
    blowup = 8 * sum(graph.degree(v) ** 2 for v in graph.vertices())
    used = res.peak_memory_bytes - WorkerMemoryModel.BASELINE_BYTES
    assert 0 < used < blowup


def test_d2_batched_sequential_spill(tc_run):
    """D2: spills happen in batches (never single-task writes) and every
    spilled task is refilled (disk-resident volume returns to zero)."""
    spilled = tc_run.metrics.get("tasks:spilled", 0)
    refilled = tc_run.metrics.get("tasks:refilled_from_disk", 0)
    assert spilled == refilled  # nothing left behind on disk


def test_d2_spills_are_whole_batches(graph):
    res = run_job(TriangleCountComper, graph, cfg(task_batch_size=3))
    spilled = res.metrics.get("tasks:spilled", 0)
    assert spilled % 3 == 0  # only C-sized batches ever hit disk


def test_d3_threads_share_cached_vertices(tc_run):
    """D3: requested vertices are shared; duplicate requests suppressed."""
    assert tc_run.metrics.get("cache:hits", 0) + tc_run.metrics.get(
        "cache:miss_duplicate", 0
    ) > 0
    # Every vertex response was requested exactly once per residency:
    # responses == first-misses.
    assert tc_run.metrics.get("cache:responses") == tc_run.metrics.get(
        "cache:miss_first"
    )


def test_d4_tasks_independent(graph):
    """D4: tasks never block each other — any subset of tasks can be
    processed in any order.  Proxy: the same job under three radically
    different scheduling configs yields identical answers."""
    answers = {
        run_job(TriangleCountComper, graph, cfg(compers_per_worker=c,
                                                task_batch_size=b)).aggregate
        for (c, b) in [(1, 1), (4, 2), (2, 16)]
    }
    assert answers == {count_triangles(graph)}


def test_d5_requests_batched(tc_run, graph):
    """D5: vertex requests travel in batches, so messages << requests."""
    requests = tc_run.metrics.get("comm:requests_queued", 0)
    messages = tc_run.metrics.get("net:messages", 0)
    assert requests > 0
    assert messages < requests  # batching actually happened


def test_d6_decomposition_spreads_work():
    """D6: a big task divides into subtasks that overflow to disk and are
    picked up by other compers."""
    g = make_dataset("orkut", scale=0.3)
    res = run_job(MaxCliqueComper, g, cfg(decompose_threshold=8,
                                          task_batch_size=2))
    assert res.metrics.get("tasks:created") > g.num_vertices  # children exist
    assert res.metrics.get("tasks:spilled", 0) > 0  # shared via L_file


def test_d6_work_stealing_between_machines():
    """D6 (second half): idle machines steal batches from busy ones.

    The graph must be big enough (and refills small enough) that the
    spawn cursors are not drained before the first progress sync.
    """
    big = erdos_renyi(600, 0.03, seed=8)
    cluster = build_cluster(
        MaxCliqueComper, big,
        cfg(compers_per_worker=1, task_batch_size=2, steal_batches=8,
            sync_every_rounds=1),
    )
    w0 = cluster.workers[0]
    w0.set_spawn_cursor(w0.num_local_vertices)
    SerialRuntime().run(cluster)
    assert cluster.metrics.get("steal:tasks") > 0


def test_d7_compute_dominates_wire_time(graph):
    """D7 (CPU-bound): on a compute-heavy job the bytes moved are small
    relative to the mining work — the IO can hide under computation.
    Proxy at our scale: total wire bytes stay within a small multiple of
    the graph's own size, while the miner touches the search space many
    times over."""
    res = run_job(MaxCliqueComper, graph, cfg())
    assert res.network_bytes < 20 * graph.memory_estimate_bytes()
    assert res.metrics.get("tasks:iterations") >= graph.num_vertices * 0.5
