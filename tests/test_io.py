"""Tests for graph file formats and the sharded store."""

import pytest

from repro.graph import (
    Graph,
    ShardedGraphStore,
    erdos_renyi,
    hash_partition,
    read_adjacency,
    read_edge_list,
    with_random_labels,
    write_adjacency,
    write_edge_list,
)
from repro.graph.io import format_adjacency_line, parse_adjacency_line


def test_adjacency_line_roundtrip():
    line = format_adjacency_line(7, 2, (1, 3, 9))
    assert parse_adjacency_line(line) == (7, 2, (1, 3, 9))


def test_adjacency_line_empty_adjacency():
    assert parse_adjacency_line(format_adjacency_line(4, 0, ())) == (4, 0, ())


def test_parse_rejects_malformed():
    with pytest.raises(ValueError):
        parse_adjacency_line("1 2 3")


def test_adjacency_file_roundtrip(tmp_path, er_graph):
    path = tmp_path / "g.adj"
    write_adjacency(er_graph, path)
    assert read_adjacency(path) == er_graph


def test_adjacency_file_preserves_labels(tmp_path):
    g = with_random_labels(erdos_renyi(20, 0.3, seed=1), 3, seed=2)
    path = tmp_path / "g.adj"
    write_adjacency(g, path)
    back = read_adjacency(path)
    assert all(back.label(v) == g.label(v) for v in g.vertices())


def test_edge_list_roundtrip(tmp_path, er_graph):
    path = tmp_path / "g.txt"
    write_edge_list(er_graph, path, comments="test graph\nsecond line")
    back = read_edge_list(path)
    # Isolated vertices are not representable in an edge list.
    connected = er_graph.induced_subgraph(
        [v for v in er_graph.vertices() if er_graph.degree(v) > 0]
    )
    assert back == connected


def test_edge_list_rejects_malformed(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("1\n")
    with pytest.raises(ValueError):
        read_edge_list(path)


class TestShardedStore:
    def test_create_and_reload(self, tmp_path, er_graph):
        store = ShardedGraphStore.create(tmp_path / "s", er_graph, num_shards=4)
        assert store.num_shards == 4
        assert store.num_vertices == er_graph.num_vertices
        assert store.num_edges == er_graph.num_edges
        assert store.load_full_graph() == er_graph

    def test_shards_partition_by_hash(self, tmp_path, er_graph):
        store = ShardedGraphStore.create(tmp_path / "s", er_graph, num_shards=3)
        seen = set()
        for shard in range(3):
            for v, _label, _adj in store.read_shard(shard):
                assert hash_partition(v, 3) == shard
                assert v not in seen
                seen.add(v)
        assert len(seen) == er_graph.num_vertices

    def test_shard_bytes(self, tmp_path, er_graph):
        store = ShardedGraphStore.create(tmp_path / "s", er_graph, num_shards=2)
        assert store.shard_bytes(0) > 0

    def test_single_shard(self, tmp_path, tiny_graph):
        store = ShardedGraphStore.create(tmp_path / "s", tiny_graph, num_shards=1)
        rows = list(store.read_shard(0))
        assert len(rows) == tiny_graph.num_vertices

    def test_rejects_zero_shards(self, tmp_path, tiny_graph):
        with pytest.raises(ValueError):
            ShardedGraphStore.create(tmp_path / "s", tiny_graph, num_shards=0)

    def test_labels_roundtrip(self, tmp_path):
        g = with_random_labels(erdos_renyi(25, 0.2, seed=3), 5, seed=4)
        store = ShardedGraphStore.create(tmp_path / "s", g, num_shards=2)
        back = store.load_full_graph()
        assert all(back.label(v) == g.label(v) for v in g.vertices())
