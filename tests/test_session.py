"""Sessions, job handles, and the resume-as-parameter surface.

Covers the PR-7 API redesign contract: ``run_job`` / ``resume_job`` are
thin wrappers over a one-shot :class:`repro.Session` (same answers, same
exceptions), ``resume_from=`` equals the classic ``resume_job``
spelling on the same checkpoint shard — including one produced by a
killed ``runtime="process"`` job — and a worker-count mismatch on
resume fails early with a clear :class:`ValueError` on every
checkpoint-capable runtime.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import GThinkerConfig, Session, run_job
from repro.algorithms import count_triangles, max_clique_reference
from repro.apps import MaxCliqueComper, TriangleCountComper
from repro.core import resume_job
from repro.core.api import Comper, SumAggregator, Task
from repro.core.errors import JobAbortedError, JobCancelledError
from repro.core.job import resolve_resume
from repro.core.runtime import get_runtime
from repro.core.session import JOB_CANCELLED, JOB_DONE, JOB_RUNNING, LocalJobHandle
from repro.graph import erdos_renyi


def cfg(**kw):
    base = dict(num_workers=3, compers_per_worker=2, task_batch_size=4,
                sync_every_rounds=8)
    base.update(kw)
    return GThinkerConfig(**base)


@pytest.fixture
def graph():
    return erdos_renyi(60, 0.15, seed=11)


# -- the Session / JobHandle surface -----------------------------------


class TestSession:
    def test_submit_returns_handle_with_answer(self, graph):
        with Session(graph, cfg()) as session:
            handle = session.submit(TriangleCountComper)
            result = handle.result(timeout=60)
        assert result.aggregate == count_triangles(graph)
        assert handle.status() == JOB_DONE
        assert handle.done()

    def test_many_jobs_one_resident_graph(self, graph):
        with Session(graph, cfg()) as session:
            h_tc = session.submit(TriangleCountComper)
            h_mc = session.submit(MaxCliqueComper)
        assert h_tc.result().aggregate == count_triangles(graph)
        assert len(h_mc.result().aggregate) == len(max_clique_reference(graph))

    def test_unknown_runtime_fails_at_construction(self, graph):
        with pytest.raises(ValueError, match="nope"):
            Session(graph, runtime="nope")

    def test_bad_max_concurrent(self, graph):
        with pytest.raises(ValueError, match="max_concurrent"):
            Session(graph, max_concurrent=0)

    def test_submit_after_close_raises(self, graph):
        session = Session(graph, cfg())
        session.close()
        assert session.closed
        with pytest.raises(RuntimeError, match="closed"):
            session.submit(TriangleCountComper)

    def test_failure_propagates_through_result(self, graph):
        class Boom(RuntimeError):
            pass

        def bad_factory():
            raise Boom("factory exploded")

        with Session(graph, cfg()) as session:
            handle = session.submit(bad_factory)
            with pytest.raises(Boom):
                handle.result(timeout=60)
        assert handle.status() == "failed"

    def test_result_timeout_keeps_job_alive(self, graph):
        release = threading.Event()

        def slow_factory():
            release.wait(30)
            return TriangleCountComper()

        with Session(graph, cfg()) as session:
            handle = session.submit(slow_factory)
            with pytest.raises(TimeoutError):
                handle.result(timeout=0.05)
            release.set()
            assert handle.result(timeout=60).aggregate == count_triangles(graph)

    def test_queued_job_cancels(self, graph):
        started, release = threading.Event(), threading.Event()

        def blocker():
            started.set()
            release.wait(30)
            return TriangleCountComper()

        with Session(graph, cfg(), max_concurrent=1) as session:
            session.submit(blocker)
            assert started.wait(10)
            queued = session.submit(TriangleCountComper)
            assert queued.status() == "queued"
            assert queued.cancel()
            assert queued.status() == JOB_CANCELLED
            with pytest.raises(JobCancelledError):
                queued.result(timeout=1)
            release.set()
        # A finished handle (terminal state) is never cancellable.
        assert not queued.cancel()

    def test_done_callback_fires_once(self, graph):
        seen = []
        with Session(graph, cfg()) as session:
            handle = session.submit(TriangleCountComper)
            handle.add_done_callback(seen.append)
            handle.result(timeout=60)
        # Registering on an already-finished handle runs immediately.
        handle.add_done_callback(seen.append)
        assert seen == [handle, handle]
        assert all(isinstance(h, LocalJobHandle) for h in seen)


# -- running-job cancellation ------------------------------------------


class SlowComper(Comper):
    """A long, steady burn: a few tasks iterating for many rounds.

    Each compute sleeps briefly and re-pulls a local vertex, so with a
    small ``inline_iteration_limit`` the engine keeps crossing sync
    boundaries — exactly where the abort token is honored.  Module
    level so ``runtime='process'`` can pickle it.
    """

    def __init__(self, iters: int = 2000, delay: float = 0.002) -> None:
        super().__init__()
        self.iters = iters
        self.delay = delay

    def task_spawn(self, v) -> None:
        if v.id < 4:
            t = Task(context=0)
            t.pull(v.id)
            self.add_task(t)

    def compute(self, task, frontier) -> bool:
        time.sleep(self.delay)
        task.context += 1
        if task.context >= self.iters:
            self.aggregate(1)
            return False
        task.pull(frontier[0].id)
        return True

    def make_aggregator(self):
        return SumAggregator()


def slow_cfg(**kw):
    # Tiny sync cadence + tiny inline budget: abort checks come fast.
    base = dict(num_workers=2, compers_per_worker=1, sync_every_rounds=2,
                inline_iteration_limit=2)
    base.update(kw)
    return GThinkerConfig(**base)


class TestRunningCancel:
    @pytest.mark.parametrize("runtime", ["serial", "threaded", "process"])
    def test_running_job_cancels_at_sync_boundary(self, graph, runtime):
        with Session(graph, slow_cfg(), runtime=runtime) as session:
            handle = session.submit(SlowComper)
            deadline = time.monotonic() + 10
            while handle.status() != JOB_RUNNING:
                assert time.monotonic() < deadline, "job never started"
                time.sleep(0.005)
            time.sleep(0.05)  # let it actually mine a little
            assert handle.cancel()  # accepted: settles asynchronously
            with pytest.raises(JobCancelledError):
                handle.result(timeout=30)
            assert handle.status() == JOB_CANCELLED
            # Cancel is idempotent-False once terminal.
            assert not handle.cancel()
            # The session is still healthy: a follow-up job runs fine.
            after = session.submit(TriangleCountComper,
                                   config=cfg(num_workers=2))
            assert after.result(timeout=60).aggregate == count_triangles(graph)

    def test_capability_flags(self):
        for runtime in ("serial", "threaded", "process", "checked"):
            assert get_runtime(runtime).capabilities.cancellation, runtime
        # Cluster declines mid-run cancellation: remote attach-mode
        # nodes would be stranded mid-epoch.
        assert not get_runtime("cluster").capabilities.cancellation

    def test_cancel_without_capability_returns_false(self, graph,
                                                     monkeypatch):
        # Simulate an incapable runtime: a running handle with no abort
        # token must refuse (False), not pretend.
        started, release = threading.Event(), threading.Event()

        def blocker():
            started.set()
            release.wait(30)
            return TriangleCountComper()

        with Session(graph, cfg()) as session:
            handle = session.submit(blocker)
            assert started.wait(10)
            handle._abort = None  # what a capability-less runtime gets
            assert not handle.cancel()
            release.set()
            assert handle.result(timeout=60) is not None


# -- the one-shot wrappers ---------------------------------------------


class TestRunJobWrapper:
    def test_run_job_same_answer_as_session(self, graph):
        direct = run_job(TriangleCountComper, graph, cfg())
        assert direct.aggregate == count_triangles(graph)

    def test_run_job_still_raises_synchronously(self, graph):
        # Exceptions cross the wrapper un-wrapped: an aborted job raises
        # JobAbortedError from run_job itself, exactly as before PR 7.
        with pytest.raises(JobAbortedError):
            run_job(TriangleCountComper, graph, cfg(), runtime="serial",
                    abort_after_rounds=3)

    def test_run_job_rejects_unknown_runtime(self, graph):
        with pytest.raises(ValueError, match="warp-drive"):
            run_job(TriangleCountComper, graph, cfg(), runtime="warp-drive")


# -- resume_from= and the resume_job equivalence ------------------------


def _make_shard(graph, tmp_path, runtime="serial", rounds=12, **cfg_kw):
    """Kill a checkpointing job early; returns the shard it left behind."""
    ck = str(tmp_path / "job.ckpt")
    cfg_kw.setdefault("checkpoint_every_syncs", 1)
    with pytest.raises(JobAbortedError):
        run_job(TriangleCountComper, graph, cfg(**cfg_kw), runtime=runtime,
                checkpoint_path=ck, abort_after_rounds=rounds)
    return ck


class TestResumeFrom:
    def test_resume_from_equals_resume_job(self, graph, tmp_path):
        ck = _make_shard(graph, tmp_path)
        via_param = run_job(TriangleCountComper, graph,
                            cfg(checkpoint_every_syncs=0),
                            resume_from=ck)
        via_classic = resume_job(TriangleCountComper, graph, ck,
                                 cfg(checkpoint_every_syncs=0))
        oracle = count_triangles(graph)
        assert via_param.aggregate == via_classic.aggregate == oracle
        assert via_param.num_workers == via_classic.num_workers

    def test_resume_from_killed_process_shard(self, graph, tmp_path):
        """Both resume spellings agree on a shard a killed
        runtime='process' job left behind — the cross-runtime
        portability the JobCheckpoint format promises."""
        # The process master syncs per scheduler round, so the abort has
        # to land early (round 3) to leave an unfinished shard behind.
        ck = _make_shard(graph, tmp_path, runtime="process", rounds=3,
                         sync_every_rounds=4)
        kw = dict(config=cfg(checkpoint_every_syncs=0), runtime="process")
        via_param = run_job(TriangleCountComper, graph, resume_from=ck, **kw)
        via_classic = resume_job(TriangleCountComper, graph, ck, **kw)
        assert (via_param.aggregate == via_classic.aggregate
                == count_triangles(graph))

    def test_session_submit_accepts_resume_from(self, graph, tmp_path):
        ck = _make_shard(graph, tmp_path)
        with Session(graph) as session:
            handle = session.submit(TriangleCountComper, resume_from=ck,
                                    config=cfg(checkpoint_every_syncs=0))
            assert handle.result(timeout=60).aggregate == count_triangles(graph)

    def test_resume_config_defaults_from_shard(self, graph, tmp_path):
        ck = _make_shard(graph, tmp_path)
        res = run_job(TriangleCountComper, graph, resume_from=ck)
        assert res.aggregate == count_triangles(graph)
        assert res.num_workers == 3  # adopted from the shard

    @pytest.mark.parametrize("runtime", ["serial", "process"])
    def test_mismatched_workers_fail_early_and_clearly(
        self, graph, tmp_path, runtime
    ):
        """A config whose num_workers disagrees with the shard raises a
        uniform ValueError on every runtime — including process, which
        used to surface it late as a CheckpointError after the workers
        had already spawned."""
        ck = _make_shard(graph, tmp_path)
        bad = cfg(num_workers=5, checkpoint_every_syncs=0)
        with pytest.raises(ValueError, match="num_workers"):
            resume_job(TriangleCountComper, graph, ck, bad, runtime=runtime)
        with pytest.raises(ValueError, match="num_workers"):
            run_job(TriangleCountComper, graph, bad, runtime=runtime,
                    resume_from=ck)

    def test_resolve_resume_is_the_single_path(self, graph, tmp_path):
        ck = _make_shard(graph, tmp_path)
        shard, inferred = resolve_resume(ck, None, "serial")
        assert shard.num_workers == inferred.num_workers == 3
        assert inferred.compers_per_worker == shard.compers_per_worker
        with pytest.raises(ValueError, match="num_workers=3"):
            resolve_resume(ck, cfg(num_workers=4), "serial")
