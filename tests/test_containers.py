"""Tests for the task containers (Q_task, B_task, T_task, L_file)."""

import threading

import pytest

from repro.core.api import Task
from repro.core.containers import (
    PendingTable,
    ReadyBuffer,
    TaskFileList,
    TaskQueue,
    comper_of_task_id,
    deserialize_tasks,
    make_task_id,
    serialize_tasks,
)


def make_tasks(n, tag="t"):
    return [Task(context=f"{tag}{i}") for i in range(n)]


class TestTaskIds:
    def test_compose_decompose(self):
        tid = make_task_id(300, 12345)
        assert comper_of_task_id(tid) == 300

    def test_48bit_sequence(self):
        tid = make_task_id(1, (1 << 48) + 5)  # wraps into 48 bits
        assert comper_of_task_id(tid) == 1

    def test_16bit_comper_limit(self):
        with pytest.raises(ValueError):
            make_task_id(1 << 16, 0)

    def test_ids_unique_across_compers(self):
        ids = {make_task_id(c, s) for c in range(4) for s in range(100)}
        assert len(ids) == 400


class TestTaskQueue:
    def test_refill_trigger_at_c(self):
        q = TaskQueue(batch_size=4)
        for t in make_tasks(4):
            q.append(t)
        assert q.needs_refill()
        q.append(Task())
        assert not q.needs_refill()

    def test_refill_room_targets_2c(self):
        q = TaskQueue(batch_size=4)
        assert q.refill_room() == 8
        for t in make_tasks(3):
            q.append(t)
        assert q.refill_room() == 5

    def test_spill_on_overflow(self):
        """At capacity 3C, appending spills the last C tasks (paper: the
        queue then holds 2C + 1)."""
        q = TaskQueue(batch_size=4)
        tasks = make_tasks(12)
        for t in tasks:
            assert q.append(t) is None
        extra = Task(context="extra")
        spill = q.append(extra)
        assert spill is not None
        assert len(spill) == 4
        assert len(q) == 9  # 2C + 1
        # The spilled batch is the *last* C tasks, in original order.
        assert [t.context for t in spill] == ["t8", "t9", "t10", "t11"]

    def test_fifo_order(self):
        q = TaskQueue(batch_size=4)
        for t in make_tasks(3):
            q.append(t)
        assert q.pop().context == "t0"

    def test_prepend_runs_first(self):
        q = TaskQueue(batch_size=4)
        q.append(Task(context="old"))
        q.prepend(make_tasks(2, tag="new"))
        assert q.pop().context == "new0"
        assert q.pop().context == "new1"
        assert q.pop().context == "old"

    def test_pop_empty(self):
        assert TaskQueue(2).pop() is None

    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            TaskQueue(0)


class TestReadyBuffer:
    def test_fifo(self):
        b = ReadyBuffer()
        for t in make_tasks(3):
            b.put(t)
        assert b.get().context == "t0"
        assert len(b) == 2

    def test_get_empty(self):
        assert ReadyBuffer().get() is None

    def test_get_batch(self):
        b = ReadyBuffer()
        for t in make_tasks(5):
            b.put(t)
        batch = b.get_batch(3)
        assert [t.context for t in batch] == ["t0", "t1", "t2"]
        assert len(b) == 2

    def test_concurrent_put_get(self):
        b = ReadyBuffer()
        seen = []

        def producer():
            for t in make_tasks(500):
                b.put(t)

        def consumer():
            got = 0
            while got < 500:
                t = b.get()
                if t is not None:
                    seen.append(t)
                    got += 1

        threads = [threading.Thread(target=producer), threading.Thread(target=consumer)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(seen) == 500


class TestPendingTable:
    def test_ready_at_met_equals_req(self):
        table = PendingTable()
        task = Task()
        table.insert(1, task, req=3)
        assert table.notify_arrival(1) is None
        assert table.notify_arrival(1) is None
        assert table.notify_arrival(1) is task
        assert len(table) == 0

    def test_duplicate_insert_rejected(self):
        table = PendingTable()
        table.insert(1, Task(), req=1)
        with pytest.raises(KeyError):
            table.insert(1, Task(), req=1)

    def test_unknown_arrival_rejected(self):
        with pytest.raises(KeyError):
            PendingTable().notify_arrival(99)

    def test_over_notification_rejected(self):
        table = PendingTable()
        table.insert(1, Task(), req=1)
        table.notify_arrival(1)
        with pytest.raises(KeyError):
            table.notify_arrival(1)

    def test_drain(self):
        table = PendingTable()
        table.insert(1, Task(context="a"), req=2)
        table.insert(2, Task(context="b"), req=1)
        drained = table.drain()
        assert {t.context for t in drained} == {"a", "b"}
        assert len(table) == 0

    def test_concurrent_notifications(self):
        """Racing notifier threads: the task is released exactly once."""
        table = PendingTable()
        task = Task()
        table.insert(7, task, req=64)
        winners = []
        lock = threading.Lock()

        def notifier():
            for _ in range(8):
                ready = table.notify_arrival(7)
                if ready is not None:
                    with lock:
                        winners.append(ready)

        threads = [threading.Thread(target=notifier) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert winners == [task]


class TestTaskFileList:
    def test_spill_and_take(self, tmp_path):
        lf = TaskFileList(tmp_path)
        lf.spill(make_tasks(4))
        assert len(lf) == 1
        assert lf.num_tasks_on_disk() == 4
        back = lf.take_file()
        assert [t.context for t in back] == ["t0", "t1", "t2", "t3"]
        assert len(lf) == 0
        assert lf.take_file() is None

    def test_fifo_file_order(self, tmp_path):
        lf = TaskFileList(tmp_path)
        lf.spill(make_tasks(2, tag="a"))
        lf.spill(make_tasks(2, tag="b"))
        assert lf.take_file()[0].context == "a0"

    def test_payload_roundtrip(self, tmp_path):
        lf = TaskFileList(tmp_path)
        lf.spill(make_tasks(3))
        payload, count = lf.take_payload()
        assert count == 3
        lf.add_payload(payload, count)
        assert lf.num_tasks_on_disk() == 3
        assert [t.context for t in lf.take_file()] == ["t0", "t1", "t2"]

    def test_cleanup_removes_files(self, tmp_path):
        lf = TaskFileList(tmp_path / "x")
        lf.spill(make_tasks(2))
        lf.cleanup()
        assert len(lf) == 0
        assert not list((tmp_path / "x").glob("*.tasks"))

    def test_io_hook_charged(self, tmp_path):
        charged = []
        lf = TaskFileList(tmp_path)
        lf.on_io = charged.append
        lf.spill(make_tasks(2))
        lf.take_file()
        assert len(charged) == 2
        assert all(c > 0 for c in charged)

    def test_tasks_preserve_subgraph(self, tmp_path):
        lf = TaskFileList(tmp_path)
        t = Task(context="rich")
        t.g.add_vertex(1, (2, 3))
        t.pull(9)
        lf.spill([t])
        back = lf.take_file()[0]
        assert back.g.neighbors(1) == (2, 3)
        assert back.pending_pulls() == (9,)


def test_serialize_roundtrip():
    tasks = make_tasks(5)
    assert [t.context for t in deserialize_tasks(serialize_tasks(tasks))] == [
        t.context for t in tasks
    ]
