"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import GThinkerConfig
from repro.graph import Graph, erdos_renyi, ring_of_cliques


@pytest.fixture
def small_config() -> GThinkerConfig:
    """A config sized for tests: small batches so spills/refills happen."""
    return GThinkerConfig(
        num_workers=3,
        compers_per_worker=2,
        task_batch_size=4,
        cache_capacity=64,
        cache_buckets=16,
        decompose_threshold=16,
        sync_every_rounds=16,
        aggregator_sync_period_s=0.002,
    )


@pytest.fixture
def tiny_graph() -> Graph:
    """The 4-vertex graph of the paper's Fig. 1 (a<b<c<d as 0<1<2<3)."""
    return Graph.from_edges([(0, 1), (0, 2), (1, 2), (2, 3), (1, 3)])


@pytest.fixture
def er_graph() -> Graph:
    return erdos_renyi(80, 0.12, seed=17)


@pytest.fixture
def clique_ring() -> Graph:
    return ring_of_cliques(5, 6)
