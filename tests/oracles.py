"""Oracle helpers shared by tests."""

from repro.graph import Graph


def nx_of(g: Graph):
    """Convert a repro Graph to a networkx Graph."""
    import networkx as nx

    out = nx.Graph()
    out.add_nodes_from(g.vertices())
    out.add_edges_from(g.edges())
    return out
