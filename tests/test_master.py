"""Tests for the master: termination detection, stealing, sync."""

import pytest

from repro.core.api import Comper, Task, VertexView
from repro.core.config import GThinkerConfig
from repro.core.job import build_cluster
from repro.core.runtime import SerialRuntime
from repro.graph import erdos_renyi


class NoopApp(Comper):
    def task_spawn(self, v: VertexView) -> None:
        pass  # never creates tasks

    def compute(self, task, frontier):
        return False


class OneTaskPerVertex(Comper):
    def task_spawn(self, v: VertexView) -> None:
        self.add_task(Task(context=v.id))

    def compute(self, task, frontier):
        self.output(task.context)
        return False


def cfg(**kw):
    base = dict(num_workers=3, compers_per_worker=2, task_batch_size=4,
                cache_capacity=64, cache_buckets=8, sync_every_rounds=4)
    base.update(kw)
    return GThinkerConfig(**base)


@pytest.fixture
def graph():
    return erdos_renyi(60, 0.1, seed=9)


def test_termination_requires_double_snapshot(graph):
    cluster = build_cluster(NoopApp, graph, cfg())
    master = cluster.master
    # Vertices not yet spawned: not idle.
    assert master.sync() is False
    for w in cluster.workers:
        w.set_spawn_cursor(w.num_local_vertices)
    # First idle observation: not yet done (needs two in a row).
    assert master.sync() is False
    assert master.sync() is True
    assert master.done


def test_progress_resets_double_snapshot(graph):
    cluster = build_cluster(NoopApp, graph, cfg())
    master = cluster.master
    for w in cluster.workers:
        w.set_spawn_cursor(w.num_local_vertices)
    assert master.sync() is False
    cluster.workers[0].note_progress()  # something happened in between
    assert master.sync() is False  # progress changed: not terminal yet
    assert master.sync() is True


def test_in_flight_messages_block_termination(graph):
    from repro.net import RequestBatch

    cluster = build_cluster(NoopApp, graph, cfg())
    for w in cluster.workers:
        w.set_spawn_cursor(w.num_local_vertices)
    cluster.transport.send(RequestBatch(src=0, dst=1, vertex_ids=[1]))
    master = cluster.master
    assert master.sync() is False
    assert master.sync() is False  # still in flight
    cluster.transport.poll(1)
    cluster.workers[1].note_progress()
    master.sync()
    assert master.sync() is True


def test_pending_tasks_block_termination(graph):
    cluster = build_cluster(NoopApp, graph, cfg())
    for w in cluster.workers:
        w.set_spawn_cursor(w.num_local_vertices)
    engine = cluster.workers[0].engines[0]
    engine.t_task.insert(1, Task(), req=1)
    master = cluster.master
    assert master.sync() is False
    assert master.sync() is False


def test_sync_after_done_is_stable(graph):
    cluster = build_cluster(NoopApp, graph, cfg())
    for w in cluster.workers:
        w.set_spawn_cursor(w.num_local_vertices)
    master = cluster.master
    master.sync()
    master.sync()
    assert master.done
    assert master.sync() is True  # idempotent


class TestStealing:
    def test_plan_moves_batches_to_idle_worker(self, graph):
        cluster = build_cluster(OneTaskPerVertex, graph, cfg(steal_batches=4))
        # Make worker 0 "done spawning" and others untouched: the gap in
        # remaining-work estimates triggers a steal toward worker 0.
        w0 = cluster.workers[0]
        w0.set_spawn_cursor(w0.num_local_vertices)
        cluster.master.sync()
        # A TaskBatchTransfer should now be in flight (or already have
        # moved vertices off the victims' spawn cursors).
        stolen = cluster.metrics.get("steal:tasks")
        assert stolen > 0
        assert cluster.transport.in_flight > 0

    def test_steal_disabled(self, graph):
        cluster = build_cluster(OneTaskPerVertex, graph,
                                cfg(steal_enabled=False))
        w0 = cluster.workers[0]
        w0.set_spawn_cursor(w0.num_local_vertices)
        cluster.master.sync()
        assert cluster.metrics.get("steal:batches") == 0

    def test_no_steal_when_balanced(self, graph):
        cluster = build_cluster(OneTaskPerVertex, graph, cfg())
        cluster.master.sync()
        # All workers have comparable unspawned counts: no batch moves.
        assert cluster.metrics.get("steal:batches") == 0

    def test_stolen_tasks_complete_job(self, graph):
        """End-to-end with aggressive stealing: outputs must cover every
        vertex exactly once."""
        cluster = build_cluster(
            OneTaskPerVertex, graph, cfg(steal_batches=8, sync_every_rounds=2)
        )
        SerialRuntime().run(cluster)
        outputs = [rec for w in cluster.workers for rec in w.outputs()]
        assert sorted(outputs) == sorted(graph.vertices())


def test_aggregator_final_sync_before_done(graph):
    """Partials aggregated after the last periodic sync still count."""
    from repro.core.api import SumAggregator

    class LateAggregator(OneTaskPerVertex):
        def make_aggregator(self):
            return SumAggregator()

        def compute(self, task, frontier):
            self.aggregate(1)
            return False

    cluster = build_cluster(LateAggregator, graph, cfg())
    SerialRuntime().run(cluster)
    assert cluster.master.global_aggregator.value == graph.num_vertices
