"""Fault tolerance of ``runtime="process"``: sync-barrier checkpoints,
worker-loss recovery, failure injection, and the CI kill-worker matrix.

Every end-to-end test here compares a job with an injected worker kill
against the no-failure oracle — same aggregate, same output multiset —
and asserts via the ``ft:recoveries`` metric that the kill actually
fired (a plan that never triggers would make the comparison vacuous).
"""

import functools
import random

import pytest

from repro.algorithms import count_triangles, max_clique_reference
from repro.apps import MaxCliqueComper, TriangleCountComper
from repro.core import (
    FailurePlanConfig,
    GThinkerConfig,
    JobAbortedError,
    WorkerProcessError,
    resume_job,
    run_job,
)
from repro.core.procruntime import _ProcessMaster
from repro.graph import Graph, erdos_renyi
from repro.graph.partition import hash_partition


def cfg(**kw):
    base = dict(
        num_workers=2, compers_per_worker=2, task_batch_size=4,
        cache_capacity=256, cache_buckets=16, decompose_threshold=16,
        aggregator_sync_period_s=0.005,
        worker_restart_backoff_s=0.0,       # fast tests
        control_reply_timeout_s=30.0,
    )
    base.update(kw)
    return GThinkerConfig(**base)


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(70, 0.12, seed=11)


#: Picklable output-listing factory (runtime="process" ships it).
TC_LISTING = functools.partial(TriangleCountComper, list_triangles=True)


class ExplodingComper(TriangleCountComper):
    """App whose compute always raises (the unrecoverable case)."""

    def compute(self, task, frontier):
        raise RuntimeError("boom at compute")


def _assert_is_max_clique(graph, clique):
    ref = max_clique_reference(graph)
    assert len(clique) == len(ref)
    members = sorted(clique)
    for i, u in enumerate(members):
        for v in members[i + 1:]:
            assert v in graph.neighbors(u)


# -- recovery matches the no-failure oracle ------------------------------


def test_kill_at_sync_with_checkpoints_matches_oracle(graph):
    """Worker 1 dies mid-sync after a barrier checkpoint was taken; the
    job rolls back to the barrier and still produces the oracle answer
    with no duplicated or lost outputs."""
    oracle = run_job(TC_LISTING, graph, cfg(), runtime="serial")
    plan = FailurePlanConfig(kill_worker=1, when="sync", at_count=2)
    res = run_job(TC_LISTING, graph,
                  cfg(failure_plan=plan, checkpoint_every_syncs=1),
                  runtime="process")
    assert res.aggregate == count_triangles(graph) == oracle.aggregate
    assert sorted(res.outputs) == sorted(oracle.outputs)
    assert res.metrics.get("ft:recoveries", 0) == 1
    assert res.metrics.get("ft:checkpoints", 0) >= 1


def test_kill_without_checkpoints_restarts_fresh(graph):
    """With no barrier taken yet the rollback point is "from scratch":
    the job restarts cleanly (no double-counted aggregate, no duplicate
    outputs from the dead incarnation's queues)."""
    oracle = run_job(TC_LISTING, graph, cfg(), runtime="serial")
    plan = FailurePlanConfig(kill_worker=0, when="sync", at_count=1)
    res = run_job(TC_LISTING, graph, cfg(failure_plan=plan),
                  runtime="process")
    assert res.aggregate == count_triangles(graph)
    assert sorted(res.outputs) == sorted(oracle.outputs)
    assert res.metrics.get("ft:recoveries", 0) == 1


def test_random_plan_recovers_mcf(graph):
    """A seeded random plan (probability 1: every worker flips heads at
    its first sync) still converges to the oracle clique."""
    plan = FailurePlanConfig(when="random", probability=1.0, seed=3)
    res = run_job(MaxCliqueComper, graph,
                  cfg(failure_plan=plan, checkpoint_every_syncs=1),
                  runtime="process")
    _assert_is_max_clique(graph, res.aggregate)
    assert res.metrics.get("ft:recoveries", 0) >= 1


# -- resume from a process-written shard ---------------------------------


def test_process_shard_resumes_on_process_and_serial(graph, tmp_path):
    """An aborted process job leaves a barrier shard that both the
    process runtime and the serial runtime can resume (shards are
    runtime-portable)."""
    ck = str(tmp_path / "job.ckpt")
    with pytest.raises(JobAbortedError):
        run_job(TriangleCountComper, graph,
                cfg(checkpoint_every_syncs=1), runtime="process",
                checkpoint_path=ck, abort_after_rounds=3)
    expected = count_triangles(graph)
    resumed_proc = resume_job(TriangleCountComper, graph, ck, cfg(),
                              runtime="process")
    assert resumed_proc.aggregate == expected
    resumed_serial = resume_job(TriangleCountComper, graph, ck, cfg(),
                                runtime="serial")
    assert resumed_serial.aggregate == expected


# -- failure classification ----------------------------------------------


def test_worker_loss_fatal_when_restarts_exhausted(graph):
    """max_worker_restarts=0 restores the pre-fault-tolerance behaviour:
    the loss surfaces as a *recoverable* WorkerProcessError (the caller
    could retry with restarts enabled)."""
    plan = FailurePlanConfig(kill_worker=1, when="sync", at_count=1)
    with pytest.raises(WorkerProcessError) as ei:
        run_job(TriangleCountComper, graph,
                cfg(failure_plan=plan, max_worker_restarts=0),
                runtime="process")
    assert ei.value.recoverable


def test_rearmed_plan_exhausts_restarts(graph):
    """rearm=True keeps killing after every recovery, so the retry
    budget runs out and the last loss is re-raised."""
    plan = FailurePlanConfig(kill_worker=0, when="sync", at_count=1,
                             rearm=True)
    with pytest.raises(WorkerProcessError) as ei:
        run_job(TriangleCountComper, graph,
                cfg(failure_plan=plan, max_worker_restarts=2),
                runtime="process")
    assert ei.value.recoverable


def test_app_error_is_not_recoverable(graph):
    """A worker that *reports* an exception is a bug, not a machine
    loss: no rollback is attempted, the traceback is surfaced."""
    with pytest.raises(WorkerProcessError) as ei:
        run_job(ExplodingComper, graph, cfg(), runtime="process")
    assert not ei.value.recoverable
    assert "boom at compute" in str(ei.value)


# -- S3: the _send error path (unit level, stubbed pipes) ----------------


class _BrokenConn:
    """A control pipe whose send() always fails; recv() replays a
    scripted reply sequence, then reports EOF."""

    def __init__(self, replies):
        self._replies = list(replies)

    def send(self, cmd):
        raise BrokenPipeError("worker side closed")

    def poll(self, timeout=0):
        return True

    def recv(self):
        if not self._replies:
            raise EOFError
        return self._replies.pop(0)


def _master_with_conn(conn):
    master = object.__new__(_ProcessMaster)
    master.conns = [conn]
    return master


def test_send_surfaces_error_report_behind_stale_replies():
    """S3 regression: on a broken pipe, _send must drain past stale
    pre-death replies to the worker's error report instead of
    mislabelling an app bug as a recoverable machine loss."""
    conn = _BrokenConn([
        ("stolen", 2),  # a stale steal reply sent before the death
        ("error", 0, "ValueError", "Traceback (most recent call last): boom"),
    ])
    with pytest.raises(WorkerProcessError) as ei:
        _master_with_conn(conn)._send(0, ("sync", None))
    assert not ei.value.recoverable
    assert "ValueError" in str(ei.value)
    assert "boom" in str(ei.value)
    assert isinstance(ei.value.__cause__, BrokenPipeError)


def test_send_to_silently_dead_worker_is_recoverable():
    """No error report in the pipe → a machine loss, with the original
    pipe error chained for debugging."""
    with pytest.raises(WorkerProcessError) as ei:
        _master_with_conn(_BrokenConn([]))._send(0, ("quiesce",))
    assert ei.value.recoverable
    assert isinstance(ei.value.__cause__, BrokenPipeError)


# -- the CI kill-worker matrix -------------------------------------------
#
# Each row kills one worker at one lifecycle point (mid-spawn cursor,
# post-spill, on a steal command) and checks the recovered job against
# the no-failure oracle.  Run standalone with `pytest -m faultmatrix`.


def _spill_graph():
    # The proven spill-forcing workload: batch size 1 → Q_task capacity
    # 3, so MCF decomposition overflows to disk on both workers.
    return erdos_renyi(60, 0.18, seed=5)


def _skewed_graph(heavy_worker, num_workers=2):
    """A graph whose vertex ids hash so one worker owns ~6x the
    vertices of the other, with a *dense* heavy partition: each heavy
    task decomposes, the resulting subtasks trip the pending threshold
    (``D = 8C``) and stall the spawn cursor, so the heavy worker's
    steal reservoir (unspawned frontier) outlives many sync sweeps and
    its workload estimate dominates — making it the deterministic
    first steal victim even though engines now run in bursts."""
    heavy, light = [], []
    v = 0
    while len(heavy) < 48 or len(light) < 8:
        owner = hash_partition(v, num_workers)
        (heavy if owner == heavy_worker else light).append(v)
        v += 1
    ids = heavy[:48] + light[:8]
    heavy_set = set(heavy[:48])
    rng = random.Random(13)
    edges = [(ids[i], ids[j])
             for i in range(len(ids)) for j in range(i + 1, len(ids))
             if rng.random() < (0.5 if ids[i] in heavy_set
                                and ids[j] in heavy_set else 0.15)]
    return Graph.from_edges(edges, extra_vertices=ids)


def _matrix_cfg(plan, **kw):
    return cfg(num_workers=2, task_batch_size=1, decompose_threshold=4,
               checkpoint_every_syncs=1, failure_plan=plan, **kw)


@pytest.mark.faultmatrix
@pytest.mark.parametrize("control_plane", ["sweep", "async"])
@pytest.mark.parametrize("victim", [0, 1])
@pytest.mark.parametrize("event,at_count", [
    ("spawn", 3),   # 3rd round observing a partially advanced cursor
    ("spill", 1),   # 1st round observing a spilled batch in L_file
    ("steal", 1),   # on receiving the 1st steal command
])
def test_kill_matrix_matches_oracle(event, at_count, victim, control_plane):
    # Both control planes run the full matrix: the async mode fires the
    # same injector events ("sync" on the asweep broadcast, "steal" on
    # the fire-and-forget dsteal command), so each kill point is
    # exercised under push-based coordination too.  The spawn/spill rows
    # run with stealing off and pops fully gated on pending work
    # (pending_threshold=0): those kill points trigger on *local* queue
    # pressure, and the async plane's lower pull latency (early direct
    # steals, more frequent status flushes) otherwise drains Q_task fast
    # enough that the victim may never spill, leaving the plan unfired
    # (stealing has its own dedicated rows).
    graph = _skewed_graph(victim) if event == "steal" else _spill_graph()
    plan = FailurePlanConfig(kill_worker=victim, when=event,
                             at_count=at_count)
    if event == "steal":
        config = _matrix_cfg(plan, control_plane=control_plane)
    else:
        config = _matrix_cfg(plan, control_plane=control_plane,
                             steal_enabled=False, pending_threshold=0)
    res = run_job(MaxCliqueComper, graph, config, runtime="process")
    _assert_is_max_clique(graph, res.aggregate)
    assert res.metrics.get("ft:recoveries", 0) >= 1, (
        f"kill plan ({event}, worker {victim}, {control_plane}) never "
        f"fired - vacuous row"
    )
