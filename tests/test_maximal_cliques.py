"""Tests for distributed maximal-clique enumeration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import enumerate_maximal_cliques
from repro.apps import MaximalCliqueComper, maximal_cliques_containing_min
from repro.core import GThinkerConfig, run_job
from repro.graph import Graph, erdos_renyi, ring_of_cliques


def cfg(**kw):
    base = dict(num_workers=3, compers_per_worker=2, task_batch_size=4,
                cache_capacity=128, cache_buckets=16)
    base.update(kw)
    return GThinkerConfig(**base)


def oracle(g, min_size=1):
    return {c for c in enumerate_maximal_cliques(g) if len(c) >= min_size}


class TestKernel:
    def test_partition_by_min_vertex(self, er_graph):
        adj_full = {v: set(er_graph.neighbors(v)) for v in er_graph.vertices()}
        union = set()
        for v in er_graph.vertices():
            hood = {v} | adj_full[v]
            local = {u: adj_full[u] & hood for u in hood}
            for c in maximal_cliques_containing_min(local, v):
                assert min(c) == v
                assert c not in union  # each clique owned by one task
                union.add(c)
        assert union == oracle(er_graph)

    def test_isolated_vertex_is_maximal(self):
        g = Graph.from_edges([(0, 1)], extra_vertices=[5])
        adj = {5: set()}
        assert list(maximal_cliques_containing_min(adj, 5)) == [(5,)]

    def test_smaller_neighbor_blocks_maximality(self):
        # Clique {1, 2} extends to {0, 1, 2}: task 1 must emit nothing.
        g = Graph.from_edges([(0, 1), (0, 2), (1, 2)])
        adj = {v: set(g.neighbors(v)) for v in g.vertices()}
        assert list(maximal_cliques_containing_min(adj, 1)) == []
        assert list(maximal_cliques_containing_min(adj, 0)) == [(0, 1, 2)]


class TestJob:
    def test_matches_bron_kerbosch(self, er_graph):
        res = run_job(MaximalCliqueComper, er_graph, cfg())
        assert set(res.outputs) == oracle(er_graph)
        assert res.aggregate == len(oracle(er_graph))

    def test_min_size_filter(self, er_graph):
        res = run_job(lambda: MaximalCliqueComper(min_size=3), er_graph, cfg())
        assert set(res.outputs) == oracle(er_graph, min_size=3)

    def test_ring_of_cliques(self, clique_ring):
        res = run_job(lambda: MaximalCliqueComper(min_size=3), clique_ring, cfg())
        six_cliques = [c for c in res.outputs if len(c) == 6]
        assert len(six_cliques) == 5

    def test_rejects_bad_min_size(self):
        with pytest.raises(ValueError):
            MaximalCliqueComper(min_size=0)

    def test_no_duplicates(self, er_graph):
        res = run_job(MaximalCliqueComper, er_graph, cfg())
        assert len(res.outputs) == len(set(res.outputs))

    def test_threaded(self, er_graph):
        res = run_job(MaximalCliqueComper, er_graph,
                      cfg(aggregator_sync_period_s=0.002), runtime="threaded")
        assert set(res.outputs) == oracle(er_graph)


@settings(max_examples=15, deadline=None)
@given(st.integers(4, 25), st.floats(0.1, 0.5), st.integers(0, 60))
def test_property_vs_oracle(n, p, seed):
    g = erdos_renyi(n, p, seed=seed)
    res = run_job(
        MaximalCliqueComper, g,
        GThinkerConfig(num_workers=2, compers_per_worker=1,
                       task_batch_size=4, cache_capacity=64),
    )
    assert set(res.outputs) == oracle(g)
