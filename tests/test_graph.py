"""Unit tests for the Graph representation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import Graph, adjacency_suffix_gt, intersect_sorted, intersect_sorted_count
from repro.graph.generators import erdos_renyi


def test_from_edges_basic(tiny_graph):
    assert tiny_graph.num_vertices == 4
    assert tiny_graph.num_edges == 5
    assert tiny_graph.neighbors(2) == (0, 1, 3)
    assert tiny_graph.degree(2) == 3


def test_self_loops_dropped():
    g = Graph.from_edges([(1, 1), (1, 2)])
    assert g.num_edges == 1
    assert g.neighbors(1) == (2,)


def test_duplicate_edges_collapse():
    g = Graph.from_edges([(0, 1), (1, 0), (0, 1)])
    assert g.num_edges == 1


def test_extra_vertices_isolated():
    g = Graph.from_edges([(0, 1)], extra_vertices=[5, 6])
    assert g.num_vertices == 4
    assert g.degree(5) == 0


def test_adjacency_constructor_symmetry_closure():
    # A neighbor with no row of its own still becomes a vertex.
    g = Graph({0: [1, 2]})
    assert 1 in g and 2 in g
    assert g.neighbors(1) == ()


def test_neighbors_gt(tiny_graph):
    assert tiny_graph.neighbors_gt(0) == (1, 2)
    assert tiny_graph.neighbors_gt(2) == (3,)
    assert tiny_graph.neighbors_gt(3) == ()


def test_has_edge(tiny_graph):
    assert tiny_graph.has_edge(0, 1)
    assert tiny_graph.has_edge(1, 0)
    assert not tiny_graph.has_edge(0, 3)
    assert not tiny_graph.has_edge(0, 99)


def test_edges_iterates_each_once(tiny_graph):
    edges = list(tiny_graph.edges())
    assert len(edges) == tiny_graph.num_edges
    assert all(u < v for u, v in edges)
    assert len(set(edges)) == len(edges)


def test_induced_subgraph(tiny_graph):
    sub = tiny_graph.induced_subgraph([0, 1, 2])
    assert sub.num_vertices == 3
    assert sub.num_edges == 3
    assert not sub.has_edge(2, 3)


def test_induced_subgraph_ignores_unknown_vertices(tiny_graph):
    sub = tiny_graph.induced_subgraph([0, 1, 99])
    assert sub.num_vertices == 2


def test_labels():
    g = Graph({0: [1], 1: [0]}, labels={0: 7})
    assert g.label(0) == 7
    assert g.label(1) == 0  # default


def test_degree_stats(clique_ring):
    assert clique_ring.max_degree() >= 5
    assert clique_ring.average_degree() > 0
    hist = clique_ring.degree_histogram()
    assert sum(hist.values()) == clique_ring.num_vertices


def test_trimmed_gt():
    g = Graph.from_edges([(0, 1), (0, 2), (1, 2)])
    t = g.trimmed(lambda v, adj: adjacency_suffix_gt(adj, v))
    assert t.neighbors(0) == (1, 2)
    assert t.neighbors(2) == ()


def test_graph_not_hashable(tiny_graph):
    with pytest.raises(TypeError):
        hash(tiny_graph)


def test_graph_equality():
    a = Graph.from_edges([(0, 1)])
    b = Graph.from_edges([(1, 0)])
    assert a == b


def test_memory_estimate_positive(er_graph):
    assert er_graph.memory_estimate_bytes() > er_graph.num_vertices * 16


# -- sorted-set kernels ----------------------------------------------------


def test_intersect_sorted_basic():
    assert intersect_sorted([1, 3, 5, 7], [2, 3, 5, 8]) == [3, 5]
    assert intersect_sorted([], [1, 2]) == []
    assert intersect_sorted_count([1, 2, 3], [1, 2, 3]) == 3


@given(
    st.lists(st.integers(0, 200), max_size=60),
    st.lists(st.integers(0, 200), max_size=60),
)
def test_intersect_sorted_matches_sets(a, b):
    sa, sb = sorted(set(a)), sorted(set(b))
    expected = sorted(set(a) & set(b))
    assert intersect_sorted(sa, sb) == expected
    assert intersect_sorted_count(sa, sb) == len(expected)


@given(st.lists(st.integers(0, 100), max_size=50), st.integers(0, 100))
def test_adjacency_suffix_gt_property(adj, v):
    row = tuple(sorted(set(adj)))
    suffix = adjacency_suffix_gt(row, v)
    assert all(u > v for u in suffix)
    assert set(suffix) == {u for u in row if u > v}


@settings(max_examples=30)
@given(st.integers(5, 40), st.floats(0.0, 0.6), st.integers(0, 10))
def test_edges_symmetric_property(n, p, seed):
    g = erdos_renyi(n, p, seed=seed)
    for u, v in g.edges():
        assert g.has_edge(v, u)
        assert u in g.neighbors(v)
        assert v in g.neighbors(u)
