"""``runtime="cluster"``: TCP framing, transport contract, end-to-end
answers vs the serial oracle, node-loss recovery, and attach mode.

The end-to-end tests run a real 2-node localhost cluster — every node a
separate OS process, every byte over real sockets — so the assertions
here cover exactly what a multi-host deployment would exercise, minus
the physical network.
"""

import functools
import multiprocessing as mp
import pickle
import socket
import time

import pytest

from repro.algorithms import (
    count_matches,
    count_triangles,
    max_clique_reference,
    triangle_query,
)
from repro.apps import MaxCliqueComper, TriangleCountComper
from repro.apps.match import SubgraphMatchComper
from repro.core import (
    FailurePlanConfig,
    GThinkerConfig,
    JobAbortedError,
    run_job,
    resume_job,
)
from repro.core.errors import WireDecodeError
from repro.core.runtime import available_runtimes, get_runtime
from repro.graph import erdos_renyi
from repro.net.message import RequestBatch, ResponseBatch
from repro.net.tcp import (
    MAX_FRAME_BYTES,
    ChannelClosed,
    ControlChannel,
    TcpTransport,
    connect_with_retry,
)


def cfg(**kw):
    base = dict(
        num_workers=2,
        compers_per_worker=2,
        task_batch_size=4,
        cache_capacity=256,
        cache_buckets=16,
        aggregator_sync_period_s=0.005,
        worker_restart_backoff_s=0.0,
        control_reply_timeout_s=30.0,
    )
    base.update(kw)
    return GThinkerConfig(**base)


# ---------------------------------------------------------------------------
# ControlChannel framing
# ---------------------------------------------------------------------------


def _channel_pair():
    a, b = socket.socketpair()
    return ControlChannel(a), ControlChannel(b)


class TestControlChannel:
    def test_object_roundtrip(self):
        a, b = _channel_pair()
        a.send_obj(("sync", {"value": 3}))
        a.send_obj(("steal", 1, 8))
        assert b.recv_obj(timeout=5.0) == ("sync", {"value": 3})
        assert b.recv_obj(timeout=5.0) == ("steal", 1, 8)

    def test_clean_close_raises_channel_closed(self):
        a, b = _channel_pair()
        a.close()
        with pytest.raises(ChannelClosed):
            b.recv_obj(timeout=5.0)

    def test_buffered_frames_survive_peer_close(self):
        # A node sends its final report and exits immediately; the FIN
        # racing the read must not eat the report.
        a, b = _channel_pair()
        a.send_obj(("final", [1, 2, 3]))
        a.close()
        assert b.recv_obj(timeout=5.0) == ("final", [1, 2, 3])
        with pytest.raises(ChannelClosed):
            b.recv_obj(timeout=5.0)

    def test_close_mid_frame_is_decode_error(self):
        a, b = _channel_pair()
        payload = pickle.dumps(("hello", 0))
        # Length prefix promises more bytes than are ever sent.
        a._sock.sendall(len(payload).to_bytes(8, "little") + payload[:3])
        a.close()
        with pytest.raises(WireDecodeError):
            b.recv_obj(timeout=5.0)

    def test_insane_length_prefix_is_decode_error(self):
        a, b = _channel_pair()
        a._sock.sendall((MAX_FRAME_BYTES + 1).to_bytes(8, "little"))
        with pytest.raises(WireDecodeError):
            b.recv_obj(timeout=5.0)

    def test_garbage_payload_is_decode_error(self):
        a, b = _channel_pair()
        junk = b"\x00not a pickle at all"
        a._sock.sendall(len(junk).to_bytes(8, "little") + junk)
        with pytest.raises(WireDecodeError):
            b.recv_obj(timeout=5.0)


# ---------------------------------------------------------------------------
# TcpTransport: the ProcessTransport contract over sockets
# ---------------------------------------------------------------------------


def _transport_pair(**kw):
    t0 = TcpTransport(0, 2, **kw)
    t1 = TcpTransport(1, 2, **kw)
    peers = [f"127.0.0.1:{t0.data_port}", f"127.0.0.1:{t1.data_port}"]
    t0.set_peers(peers)
    t1.set_peers(peers)
    return t0, t1


def _poll_until(transport, n, timeout=5.0):
    got = []
    deadline = time.monotonic() + timeout
    while len(got) < n and time.monotonic() < deadline:
        got.extend(transport.poll(transport.node_id))
        time.sleep(0.001)
    return got


class TestTcpTransport:
    def test_roundtrip_binary_codec(self):
        t0, t1 = _transport_pair()
        try:
            t0.send(RequestBatch(src=0, dst=1, vertex_ids=[3, 5, 7]))
            t0.send(ResponseBatch(
                src=0, dst=1, vertices=[(3, 1, [4, 5]), (5, 0, [])]
            ))
            t0.flush_outgoing()
            got = _poll_until(t1, 2)
            assert isinstance(got[0], RequestBatch)
            assert list(got[0].vertex_ids) == [3, 5, 7]
            assert isinstance(got[1], ResponseBatch)
            assert t0.sent_count == 2 and t1.received_count == 2
        finally:
            t0.close()
            t1.close()

    def test_loopback_self_send_counts_symmetrically(self):
        t0, t1 = _transport_pair()
        try:
            t0.send(RequestBatch(src=0, dst=0, vertex_ids=[1]))
            assert t0.sent_count == 1
            got = _poll_until(t0, 1)
            assert list(got[0].vertex_ids) == [1]
            assert t0.received_count == 1
        finally:
            t0.close()
            t1.close()

    def test_poll_limit_parks_overflow_without_counting(self):
        t0, t1 = _transport_pair()
        try:
            for i in range(5):
                t0.send(RequestBatch(src=0, dst=1, vertex_ids=[i]))
            t0.flush_outgoing()
            deadline = time.monotonic() + 5.0
            first = []
            while not first and time.monotonic() < deadline:
                first = t1.poll(1, limit=2)
            assert len(first) == 2
            assert t1.received_count == 2  # parked messages not counted
            rest = _poll_until(t1, 3)
            assert [m.vertex_ids[0] for m in first + rest] == list(range(5))
            assert t1.received_count == 5 == t0.sent_count
        finally:
            t0.close()
            t1.close()

    def test_corrupt_stream_raises_wire_decode_error(self):
        t0, t1 = _transport_pair()
        try:
            junk = b"\x93garbage that is neither GTWIRE nor a pickle"
            with socket.create_connection(("127.0.0.1", t1.data_port)) as s:
                s.sendall(len(junk).to_bytes(8, "little") + junk)
                deadline = time.monotonic() + 5.0
                with pytest.raises(WireDecodeError):
                    while time.monotonic() < deadline:
                        t1.poll(1)
                        time.sleep(0.001)
        finally:
            t0.close()
            t1.close()

    def test_insane_frame_length_raises_wire_decode_error(self):
        t0, t1 = _transport_pair()
        try:
            with socket.create_connection(("127.0.0.1", t1.data_port)) as s:
                s.sendall((MAX_FRAME_BYTES + 7).to_bytes(8, "little"))
                deadline = time.monotonic() + 5.0
                with pytest.raises(WireDecodeError):
                    while time.monotonic() < deadline:
                        t1.poll(1)
                        time.sleep(0.001)
        finally:
            t0.close()
            t1.close()

    def test_byte_metrics_split_by_locality(self):
        from repro.core.metrics import MetricsRegistry

        m = MetricsRegistry()
        t0 = TcpTransport(0, 2, metrics=m)
        t1 = TcpTransport(1, 2)
        try:
            peers = [f"127.0.0.1:{t0.data_port}", f"127.0.0.1:{t1.data_port}"]
            t0.set_peers(peers)
            t0.send(RequestBatch(src=0, dst=0, vertex_ids=[1]))  # self
            t0.send(RequestBatch(src=0, dst=1, vertex_ids=[2]))  # same host
            snap = m.snapshot()
            assert snap["net:bytes_local"] > 0
            assert snap["net:bytes_same_host"] > 0
            assert "net:bytes_cross_host" not in snap
        finally:
            t0.close()
            t1.close()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


def test_cluster_runtime_registered_with_full_capabilities():
    assert "cluster" in available_runtimes()
    caps = get_runtime("cluster").capabilities
    assert caps.checkpointing and caps.failure_injection
    assert caps.protocol_checking and caps.resume


# ---------------------------------------------------------------------------
# End-to-end: 2-node localhost cluster vs the serial oracle
# ---------------------------------------------------------------------------


def test_cluster_triangle_count_matches_serial_oracle():
    g = erdos_renyi(70, 0.12, seed=11)
    res = run_job(TriangleCountComper, g, cfg(), runtime="cluster")
    assert res.aggregate == count_triangles(g)
    assert res.num_workers == 2
    assert res.metrics.get("tcp:frames", 0) > 0


def test_cluster_max_clique_matches_reference():
    g = erdos_renyi(40, 0.25, seed=5)
    res = run_job(MaxCliqueComper, g, cfg(), runtime="cluster")
    assert len(res.aggregate) == len(max_clique_reference(g))


def test_cluster_subgraph_matching_matches_oracle():
    g = erdos_renyi(50, 0.15, seed=9)
    q = triangle_query()
    factory = functools.partial(SubgraphMatchComper, q)
    res = run_job(factory, g, cfg(), runtime="cluster")
    assert res.aggregate == count_matches(g, q)


def test_cluster_kill_node_recovers_to_oracle():
    """An injected node kill (a silent os._exit, exactly a machine loss)
    must roll the job back to the last sync-barrier checkpoint and still
    produce the oracle answer."""
    g = erdos_renyi(70, 0.12, seed=11)
    config = cfg(
        checkpoint_every_syncs=2,
        failure_plan=FailurePlanConfig(when="sync", at_count=2, kill_worker=1),
    )
    res = run_job(TriangleCountComper, g, config, runtime="cluster")
    assert res.aggregate == count_triangles(g)
    assert res.metrics.get("ft:recoveries", 0) >= 1


def test_cluster_checkpoint_shard_resumes(tmp_path):
    g = erdos_renyi(70, 0.12, seed=11)
    path = str(tmp_path / "job.ckpt")
    config = cfg(checkpoint_every_syncs=1)
    with pytest.raises(JobAbortedError):
        run_job(TriangleCountComper, g, config, runtime="cluster",
                checkpoint_path=path, abort_after_rounds=2)
    res = resume_job(TriangleCountComper, g, path, config=config,
                     runtime="cluster")
    assert res.aggregate == count_triangles(g)


# ---------------------------------------------------------------------------
# Attach mode: externally started nodes (the multi-host path)
# ---------------------------------------------------------------------------


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def test_attach_mode_with_external_nodes():
    from repro.core.clusterruntime import serve_node

    port = _free_port()
    ctx = mp.get_context()
    procs = [
        ctx.Process(
            target=serve_node,
            args=(f"127.0.0.1:{port}",),
            kwargs=dict(bind_host="127.0.0.1", connect_timeout_s=30.0),
            daemon=True,
        )
        for _ in range(2)
    ]
    for p in procs:
        p.start()
    try:
        g = erdos_renyi(70, 0.12, seed=11)
        config = cfg(
            cluster_hosts=("127.0.0.1:0", "127.0.0.1:0"),
            cluster_bind=f"127.0.0.1:{port}",
            cluster_connect_timeout_s=30.0,
        )
        res = run_job(TriangleCountComper, g, config, runtime="cluster")
        assert res.aggregate == count_triangles(g)
    finally:
        for p in procs:
            p.join(timeout=10.0)
            if p.is_alive():
                p.terminate()


def test_attach_mode_node_loss_raises_with_resume_guidance():
    """Attach-mode nodes are started externally, so the master cannot
    respawn them; a loss must fail with actionable guidance instead of
    hanging or retrying forever."""
    from repro.core.errors import GThinkerError
    from repro.core.clusterruntime import serve_node

    port = _free_port()
    ctx = mp.get_context()
    procs = [
        ctx.Process(
            target=serve_node,
            args=(f"127.0.0.1:{port}",),
            kwargs=dict(bind_host="127.0.0.1", connect_timeout_s=30.0),
            daemon=True,
        )
        for _ in range(2)
    ]
    for p in procs:
        p.start()
    try:
        g = erdos_renyi(70, 0.12, seed=11)
        config = cfg(
            cluster_hosts=("127.0.0.1:0", "127.0.0.1:0"),
            cluster_bind=f"127.0.0.1:{port}",
            cluster_connect_timeout_s=30.0,
            failure_plan=FailurePlanConfig(
                when="sync", at_count=2, kill_worker=1
            ),
        )
        with pytest.raises(GThinkerError, match="resume"):
            run_job(TriangleCountComper, g, config, runtime="cluster")
    finally:
        for p in procs:
            p.join(timeout=10.0)
            if p.is_alive():
                p.terminate()


def test_connect_with_retry_times_out():
    port = _free_port()  # nothing listening here
    with pytest.raises(OSError):
        connect_with_retry("127.0.0.1", port, timeout_s=0.3)
