"""Tests for vertex placement."""

import pytest
from hypothesis import given, strategies as st

from repro.graph import hash_partition, owner_map, partition_counts


def test_partition_in_range():
    for v in range(1000):
        assert 0 <= hash_partition(v, 7) < 7


def test_partition_deterministic():
    assert hash_partition(42, 5) == hash_partition(42, 5)


def test_single_partition():
    assert all(hash_partition(v, 1) == 0 for v in range(100))


def test_rejects_zero_partitions():
    with pytest.raises(ValueError):
        hash_partition(1, 0)


def test_balance_on_contiguous_ids():
    """Contiguous id ranges (generated graphs) must spread evenly."""
    counts = partition_counts(range(10_000), 8)
    expected = 10_000 / 8
    assert all(0.8 * expected < c < 1.2 * expected for c in counts)


def test_owner_map():
    m = owner_map([1, 2, 3], 4)
    assert set(m) == {1, 2, 3}
    assert all(v == hash_partition(k, 4) for k, v in m.items())


@given(st.integers(0, 2**40), st.integers(1, 64))
def test_partition_property(v, n):
    assert 0 <= hash_partition(v, n) < n
