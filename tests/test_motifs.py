"""Tests for motif-counting kernels against brute-force oracles."""

from itertools import combinations, permutations

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.motifs import (
    clustering_coefficient,
    count_diamonds,
    count_four_cliques,
    count_squares,
    count_wedges,
    motif_census,
)
from repro.graph import Graph, erdos_renyi, ring_of_cliques

from tests.oracles import nx_of


def brute_squares(g: Graph) -> int:
    """Count 4-cycles: each counted 8x over ordered tuples (rotations x 2)."""
    vs = g.sorted_vertices()
    count = 0
    for (u, a, w, b) in permutations(vs, 4):
        if (g.has_edge(u, a) and g.has_edge(a, w)
                and g.has_edge(w, b) and g.has_edge(b, u)):
            count += 1
    return count // 8


def brute_diamonds(g: Graph) -> int:
    """Induced diamonds: 4-subsets with exactly 5 edges."""
    vs = g.sorted_vertices()
    count = 0
    for quad in combinations(vs, 4):
        edges = sum(1 for x, y in combinations(quad, 2) if g.has_edge(x, y))
        if edges == 5:
            count += 1
    return count


def brute_k4(g: Graph) -> int:
    vs = g.sorted_vertices()
    return sum(
        1 for quad in combinations(vs, 4)
        if all(g.has_edge(x, y) for x, y in combinations(quad, 2))
    )


def test_wedges_path():
    g = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
    assert count_wedges(g) == 2  # centered at 1 and 2


def test_wedges_star():
    g = Graph.from_edges([(0, i) for i in range(1, 5)])
    assert count_wedges(g) == 6  # C(4, 2)


def test_clustering_triangle():
    g = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
    assert clustering_coefficient(g) == pytest.approx(1.0)


def test_clustering_triangle_free():
    g = Graph.from_edges([(0, 1), (1, 2)])
    assert clustering_coefficient(g) == 0.0


def test_clustering_matches_networkx(er_graph):
    import networkx as nx

    assert clustering_coefficient(er_graph) == pytest.approx(
        nx.transitivity(nx_of(er_graph))
    )


def test_square_cycle():
    g = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
    assert count_squares(g) == 1


def test_squares_in_k4():
    g = ring_of_cliques(1, 4)
    assert count_squares(g) == 3  # K4 contains 3 distinct 4-cycles


def test_k4_counts():
    assert count_four_cliques(ring_of_cliques(1, 4)) == 1
    assert count_four_cliques(ring_of_cliques(1, 5)) == 5  # C(5, 4)
    assert count_four_cliques(ring_of_cliques(3, 4)) == 3


def test_diamond_simple():
    g = Graph.from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)])
    assert count_diamonds(g) == 1
    # Complete the K4: the induced diamond disappears.
    g2 = Graph.from_edges(list(g.edges()) + [(2, 3)])
    assert count_diamonds(g2) == 0


def test_census_keys(er_graph):
    census = motif_census(er_graph)
    assert set(census) == {
        "wedges", "triangles", "clustering", "squares", "four_cliques", "diamonds",
    }


@settings(max_examples=20, deadline=None)
@given(st.integers(4, 10), st.floats(0.2, 0.8), st.integers(0, 40))
def test_squares_property(n, p, seed):
    g = erdos_renyi(n, p, seed=seed)
    assert count_squares(g) == brute_squares(g)


@settings(max_examples=20, deadline=None)
@given(st.integers(4, 11), st.floats(0.2, 0.8), st.integers(0, 40))
def test_k4_property(n, p, seed):
    g = erdos_renyi(n, p, seed=seed)
    assert count_four_cliques(g) == brute_k4(g)


@settings(max_examples=20, deadline=None)
@given(st.integers(4, 11), st.floats(0.2, 0.8), st.integers(0, 40))
def test_diamonds_property(n, p, seed):
    g = erdos_renyi(n, p, seed=seed)
    assert count_diamonds(g) == brute_diamonds(g)
