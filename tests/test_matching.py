"""Tests for serial subgraph matching."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    QueryGraph,
    count_matches,
    match_reference,
    match_subgraph,
    path_query,
    star_query,
    triangle_query,
)
from repro.algorithms.triangles import count_triangles
from repro.graph import Graph, erdos_renyi, with_random_labels


def test_triangle_query_counts_triangles(er_graph):
    assert count_matches(er_graph, triangle_query()) == count_triangles(er_graph)


def test_path_query_on_path():
    g = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
    # Paths of length 3 in a path graph: exactly one embedding.
    assert count_matches(g, path_query(3)) == 1


def test_path_query_symmetry_breaking():
    """A 2-path in a triangle: 3 embeddings (one per center), not 6."""
    g = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
    assert count_matches(g, path_query(2)) == 3


def test_star_query():
    g = Graph.from_edges([(0, 1), (0, 2), (0, 3)])
    assert count_matches(g, star_query(3)) == 1
    assert count_matches(g, star_query(2)) == 3  # choose 2 of 3 leaves


def test_labels_restrict_matches():
    g = Graph({0: [1, 2], 1: [0, 2], 2: [0, 1]}, labels={0: 0, 1: 1, 2: 2})
    q = QueryGraph([(0, 1), (1, 2), (0, 2)], labels={0: 0, 1: 1, 2: 2})
    assert count_matches(g, q) == 1
    q_wrong = QueryGraph([(0, 1), (1, 2), (0, 2)], labels={0: 3, 1: 1, 2: 2})
    assert count_matches(g, q_wrong) == 0


def test_embeddings_are_valid(er_graph):
    q = path_query(2)
    for emb in match_subgraph(er_graph, q):
        assert len(set(emb.values())) == q.num_vertices  # injective
        for u, v in q.graph.edges():
            assert er_graph.has_edge(emb[u], emb[v])


def test_anchored_union_equals_unanchored(er_graph):
    q = triangle_query()
    q0 = q.order[0]
    total = sum(
        count_matches(er_graph, q, anchor=(q0, v)) for v in er_graph.vertices()
    )
    assert total == count_matches(er_graph, q)


def test_anchor_must_be_first_in_order(er_graph):
    q = path_query(2)
    wrong = [v for v in q.graph.vertices() if v != q.order[0]][0]
    with pytest.raises(ValueError):
        list(match_subgraph(er_graph, q, anchor=(wrong, 0)))


def test_empty_query_rejected():
    with pytest.raises(ValueError):
        QueryGraph([])


def test_query_matching_order_connected():
    q = QueryGraph([(0, 1), (1, 2), (2, 3), (3, 0)])
    seen = {q.order[0]}
    for v in q.order[1:]:
        assert any(u in seen for u in q.graph.neighbors(v))
        seen.add(v)


def test_matches_reference_on_random_unlabeled():
    g = erdos_renyi(9, 0.45, seed=4)
    for q in (triangle_query(), path_query(2), path_query(3), star_query(3)):
        assert count_matches(g, q) == match_reference(g, q), q.graph


def test_matches_reference_labeled():
    g = with_random_labels(erdos_renyi(9, 0.5, seed=6), 2, seed=7)
    q = QueryGraph([(0, 1), (1, 2)], labels={0: 0, 1: 1, 2: 0})
    assert count_matches(g, q) == match_reference(g, q)


def test_four_clique_query():
    q = QueryGraph([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
    g = erdos_renyi(10, 0.6, seed=8)
    assert count_matches(g, q) == match_reference(g, q)


@settings(max_examples=20, deadline=None)
@given(st.integers(5, 9), st.floats(0.2, 0.7), st.integers(0, 30))
def test_triangle_count_property(n, p, seed):
    g = erdos_renyi(n, p, seed=seed)
    assert count_matches(g, triangle_query()) == count_triangles(g)


@settings(max_examples=12, deadline=None)
@given(st.integers(5, 8), st.floats(0.3, 0.7), st.integers(0, 20))
def test_reference_property_small(n, p, seed):
    g = erdos_renyi(n, p, seed=seed)
    q = path_query(2)
    assert count_matches(g, q) == match_reference(g, q)
