"""Tests for the discrete-event simulated runtime."""

import pytest

from repro.algorithms import count_triangles, max_clique_reference
from repro.apps import MaxCliqueComper, TriangleCountComper
from repro.core import GThinkerConfig
from repro.core.config import MachineModel, NetworkModel
from repro.graph import erdos_renyi
from repro.sim import EventQueue, run_simulated_job


def cfg(**kw):
    base = dict(
        num_workers=2, compers_per_worker=2, task_batch_size=4,
        cache_capacity=64, cache_buckets=16, decompose_threshold=16,
        aggregator_sync_period_s=0.005,
    )
    base.update(kw)
    return GThinkerConfig(**base)


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(120, 0.1, seed=55)


class TestEventQueue:
    def test_ordering(self):
        q = EventQueue()
        q.push(2.0, "b")
        q.push(1.0, "a")
        q.push(2.0, "c")
        assert q.pop() == (1.0, "a")
        # Same-time events pop in insertion order (deterministic).
        assert q.pop() == (2.0, "b")
        assert q.pop() == (2.0, "c")

    def test_empty_pop(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, "x")

    def test_peek_and_len(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(5.0, "x")
        assert q.peek_time() == 5.0
        assert len(q) == 1
        q.pop()
        assert q.events_processed == 1


class TestSimulatedJobs:
    def test_tc_answer_exact(self, graph):
        r = run_simulated_job(TriangleCountComper, graph, cfg())
        assert r.aggregate == count_triangles(graph)

    def test_mcf_answer_exact(self, graph):
        r = run_simulated_job(MaxCliqueComper, graph, cfg())
        assert len(r.aggregate) == len(max_clique_reference(graph))

    def test_virtual_time_positive_and_reported(self, graph):
        r = run_simulated_job(TriangleCountComper, graph, cfg())
        assert r.virtual_time_s > 0
        assert r.wall_time_s > 0
        assert r.events > 0
        assert r.num_workers == 2

    def test_cpu_speed_scales_virtual_time(self, graph):
        slow = run_simulated_job(
            TriangleCountComper, graph,
            cfg(machine=MachineModel(cpu_speed=50.0)),
        )
        fast = run_simulated_job(
            TriangleCountComper, graph,
            cfg(machine=MachineModel(cpu_speed=1.0)),
        )
        assert slow.virtual_time_s > fast.virtual_time_s

    def test_parallelism_reduces_virtual_time(self, graph):
        """More compers must help on a compute-heavy workload (robust
        margin: 1 core vs 8 cores at high cpu_speed)."""
        mm = MachineModel(cpu_speed=50.0)
        one = run_simulated_job(
            MaxCliqueComper, graph, cfg(num_workers=1, compers_per_worker=1, machine=mm)
        )
        eight = run_simulated_job(
            MaxCliqueComper, graph, cfg(num_workers=1, compers_per_worker=8, machine=mm)
        )
        assert eight.virtual_time_s < one.virtual_time_s

    def test_slow_network_costs_virtual_time(self, graph):
        fast_net = run_simulated_job(
            TriangleCountComper, graph,
            cfg(network=NetworkModel(latency_s=1e-6, bandwidth_bytes_per_s=1e12)),
        )
        slow_net = run_simulated_job(
            TriangleCountComper, graph,
            cfg(network=NetworkModel(latency_s=5e-3, bandwidth_bytes_per_s=1e5)),
        )
        assert slow_net.virtual_time_s > fast_net.virtual_time_s

    def test_single_machine_no_network(self, graph):
        r = run_simulated_job(TriangleCountComper, graph, cfg(num_workers=1))
        assert r.network_bytes == 0

    def test_metrics_and_memory(self, graph):
        r = run_simulated_job(TriangleCountComper, graph, cfg())
        assert r.peak_memory_bytes > 0
        assert r.metrics["tasks:finished"] > 0

    def test_outputs_flow_through(self):
        g = erdos_renyi(30, 0.25, seed=3)
        r = run_simulated_job(
            lambda: TriangleCountComper(list_triangles=True), g, cfg()
        )
        assert len(r.outputs) == count_triangles(g)

    def test_work_stealing_metric_possible(self, graph):
        """With stealing on and skewed spawn cursors the master may move
        batches; at minimum the run completes correctly."""
        r = run_simulated_job(
            TriangleCountComper, graph, cfg(num_workers=4, steal_batches=8)
        )
        assert r.aggregate == count_triangles(graph)


class TestUtilization:
    def test_utilization_in_unit_range(self, graph):
        r = run_simulated_job(TriangleCountComper, graph, cfg())
        assert 0.0 < r.cpu_utilization <= 1.0

    def test_single_busy_core_high_utilization(self, graph):
        """One comper with plenty of local work should rarely idle."""
        r = run_simulated_job(
            MaxCliqueComper, graph,
            cfg(num_workers=1, compers_per_worker=1,
                machine=MachineModel(cpu_speed=20.0)),
        )
        assert r.cpu_utilization > 0.6

    def test_cores_cannot_exceed_realtime(self, graph):
        """The busy-until clamp: total busy time <= makespan x cores."""
        r = run_simulated_job(MaxCliqueComper, graph, cfg())
        # cpu_utilization is exactly busy/(makespan*cores), pre-clamped;
        # the invariant is that the raw value never needed clamping far
        # beyond rounding.
        assert r.cpu_utilization <= 1.0
