"""Tests for the aggregation services."""

import pytest

from repro.core.aggregator import AggregatorService, GlobalAggregator
from repro.core.api import MaxAggregator, SumAggregator


def test_disabled_service():
    svc = AggregatorService(None)
    assert not svc.enabled
    assert svc.view() is None
    assert svc.take_partial() is None
    with pytest.raises(RuntimeError):
        svc.aggregate(1)


def test_local_partial_accumulates():
    svc = AggregatorService(SumAggregator())
    svc.aggregate(2)
    svc.aggregate(3)
    assert svc.view() == 5


def test_take_partial_resets():
    svc = AggregatorService(SumAggregator())
    svc.aggregate(4)
    assert svc.take_partial() == 4
    assert svc.take_partial() == 0


def test_view_combines_global_and_local():
    svc = AggregatorService(SumAggregator())
    svc.publish_global(10)
    svc.aggregate(5)
    assert svc.view() == 15


def test_sync_round_trip():
    agg = SumAggregator()
    services = [AggregatorService(agg) for _ in range(3)]
    master = GlobalAggregator(agg)
    for i, svc in enumerate(services):
        svc.aggregate(i + 1)
    assert master.sync(services) == 6
    for svc in services:
        assert svc.view() == 6
    # Second sync with no new data keeps the value (sum partials are 0).
    assert master.sync(services) == 6


def test_sync_max_aggregator():
    agg = MaxAggregator(key=len)
    services = [AggregatorService(agg) for _ in range(2)]
    master = GlobalAggregator(agg)
    services[0].aggregate((1, 2))
    services[1].aggregate((3, 4, 5))
    assert master.sync(services) == (3, 4, 5)
    services[0].aggregate((1,))
    assert master.sync(services) == (3, 4, 5)  # max is monotone


def test_global_restore_hook():
    master = GlobalAggregator(SumAggregator())
    master.set_value(42)
    assert master.value == 42


def test_incremental_counts_not_double_counted():
    """A partial taken once must never be folded twice."""
    agg = SumAggregator()
    services = [AggregatorService(agg)]
    master = GlobalAggregator(agg)
    services[0].aggregate(7)
    master.sync(services)
    master.sync(services)
    master.sync(services)
    assert master.value == 7
