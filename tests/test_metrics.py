"""Tests for metrics and the worker memory model."""

import threading

from repro.core.metrics import MetricsRegistry, WorkerMemoryModel


def test_counters():
    m = MetricsRegistry()
    m.add("x")
    m.add("x", 2)
    assert m.get("x") == 3
    assert m.get("missing") == 0


def test_maxima():
    m = MetricsRegistry()
    m.record_max("peak", 5)
    m.record_max("peak", 3)
    assert m.get_max("peak") == 5


def test_snapshot():
    m = MetricsRegistry()
    m.add("a", 2)
    m.record_max("b", 7)
    snap = m.snapshot()
    assert snap == {"a": 2, "max:b": 7}


def test_merge_from():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.add("x", 1)
    a.record_max("m", 5)
    b.add("x", 2)
    b.record_max("m", 9)
    a.merge_from(b)
    assert a.get("x") == 3
    assert a.get_max("m") == 9


def test_thread_safety():
    m = MetricsRegistry()

    def bump():
        for _ in range(5000):
            m.add("n")

    threads = [threading.Thread(target=bump) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert m.get("n") == 40_000


class TestWorkerMemoryModel:
    def test_components_sum(self):
        m = MetricsRegistry()
        mem = WorkerMemoryModel(m, worker_id=0)
        mem.set_local_table(1000)
        mem.add_cache(500)
        mem.add_tasks(200)
        assert mem.current() == WorkerMemoryModel.BASELINE_BYTES + 1700

    def test_peak_recorded_per_worker_and_global(self):
        m = MetricsRegistry()
        mem = WorkerMemoryModel(m, worker_id=3)
        mem.add_cache(10_000)
        mem.add_cache(-10_000)
        peak = WorkerMemoryModel.BASELINE_BYTES + 10_000
        assert m.get_max("worker3:peak_memory_bytes") == peak
        assert m.get_max("peak_memory_bytes") == peak
        assert mem.current() == WorkerMemoryModel.BASELINE_BYTES

    def test_negative_adjustments(self):
        m = MetricsRegistry()
        mem = WorkerMemoryModel(m, worker_id=0)
        mem.add_tasks(100)
        mem.add_tasks(-40)
        assert mem.current() == WorkerMemoryModel.BASELINE_BYTES + 60
