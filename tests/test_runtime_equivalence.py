"""Cross-runtime equivalence: serial, threaded, simulated and process
runs of the same job must produce identical answers (and identical
output *sets* — ordering is scheduling-dependent by design)."""

import functools

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import (
    count_matches,
    count_triangles,
    max_clique_reference,
    triangle_query,
)
from repro.apps import (
    MaxCliqueComper,
    QuasiCliqueComper,
    SubgraphMatchComper,
    TriangleCountComper,
)
from repro.core import GThinkerConfig, run_job
from repro.graph import erdos_renyi
from repro.sim import run_simulated_job


def cfg(**kw):
    base = dict(num_workers=3, compers_per_worker=2, task_batch_size=4,
                cache_capacity=64, cache_buckets=16, decompose_threshold=16,
                aggregator_sync_period_s=0.002)
    base.update(kw)
    return GThinkerConfig(**base)


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(100, 0.1, seed=99)


def test_tc_equivalence(graph):
    expected = count_triangles(graph)
    serial = run_job(TriangleCountComper, graph, cfg(), runtime="serial")
    threaded = run_job(TriangleCountComper, graph, cfg(), runtime="threaded")
    simulated = run_simulated_job(TriangleCountComper, graph, cfg())
    assert serial.aggregate == threaded.aggregate == simulated.aggregate == expected


def test_mcf_equivalence(graph):
    expected = len(max_clique_reference(graph))
    sizes = {
        len(run_job(MaxCliqueComper, graph, cfg(), runtime="serial").aggregate),
        len(run_job(MaxCliqueComper, graph, cfg(), runtime="threaded").aggregate),
        len(run_simulated_job(MaxCliqueComper, graph, cfg()).aggregate),
    }
    assert sizes == {expected}


def test_output_sets_equal_across_runtimes():
    g = erdos_renyi(40, 0.2, seed=7)
    serial = run_job(lambda: TriangleCountComper(list_triangles=True), g,
                     cfg(), runtime="serial")
    threaded = run_job(lambda: TriangleCountComper(list_triangles=True), g,
                       cfg(), runtime="threaded")
    assert set(serial.outputs) == set(threaded.outputs)
    assert len(serial.outputs) == len(threaded.outputs)


def test_serial_runs_deterministic(graph):
    """Two serial runs of the same job produce identical output order."""
    a = run_job(lambda: TriangleCountComper(list_triangles=True), graph, cfg())
    b = run_job(lambda: TriangleCountComper(list_triangles=True), graph, cfg())
    assert a.outputs == b.outputs
    assert a.aggregate == b.aggregate


@settings(max_examples=8, deadline=None)
@given(
    n=st.integers(20, 70),
    p=st.floats(0.05, 0.25),
    seed=st.integers(0, 1000),
    workers=st.integers(1, 5),
    compers=st.integers(1, 3),
    batch=st.integers(1, 8),
    capacity=st.integers(4, 200),
)
def test_tc_correct_under_random_configs(n, p, seed, workers, compers, batch, capacity):
    """Engine-level property: the distributed answer equals the oracle
    for arbitrary graphs x arbitrary (legal) configurations."""
    g = erdos_renyi(n, p, seed=seed)
    config = GThinkerConfig(
        num_workers=workers, compers_per_worker=compers,
        task_batch_size=batch, cache_capacity=capacity,
        cache_buckets=8, sync_every_rounds=8,
    )
    res = run_job(TriangleCountComper, g, config)
    assert res.aggregate == count_triangles(g)


# -- process backend vs the serial oracle --------------------------------
#
# The factories below must be picklable (classes / functools.partial):
# runtime="process" ships them to every worker process.


def test_tc_process_equals_oracle(graph):
    res = run_job(TriangleCountComper, graph, cfg(), runtime="process")
    assert res.aggregate == count_triangles(graph)


def test_mcf_process_equals_oracle(graph):
    res = run_job(MaxCliqueComper, graph, cfg(), runtime="process")
    assert len(res.aggregate) == len(max_clique_reference(graph))


def test_gm_process_equals_oracle():
    g = erdos_renyi(50, 0.15, seed=9)
    q = triangle_query()
    factory = functools.partial(SubgraphMatchComper, q)
    res = run_job(factory, g, cfg(num_workers=2), runtime="process")
    assert res.aggregate == count_matches(g, q)


def test_process_output_sets_match_serial():
    g = erdos_renyi(40, 0.2, seed=7)
    factory = functools.partial(TriangleCountComper, list_triangles=True)
    serial = run_job(factory, g, cfg(), runtime="serial")
    process = run_job(factory, g, cfg(), runtime="process")
    assert set(process.outputs) == set(serial.outputs)
    assert len(process.outputs) == len(serial.outputs)


def test_process_spill_forcing_config():
    """Tiny batches + aggressive decomposition force the disk-spill path
    (and usually steals) across process boundaries."""
    g = erdos_renyi(60, 0.18, seed=5)
    # batch size 1 → Q_task capacity 3: a single decomposition (~average
    # degree children) overflows regardless of process scheduling.
    config = cfg(num_workers=2, task_batch_size=1, decompose_threshold=4)
    res = run_job(MaxCliqueComper, g, config, runtime="process")
    assert len(res.aggregate) == len(max_clique_reference(g))
    assert res.metrics.get("tasks:spilled", 0) > 0


def test_process_aggregator_sync_heavy_config():
    """A near-continuous sync cadence must not change the answer (the
    pruning bound just propagates faster)."""
    g = erdos_renyi(60, 0.15, seed=11)
    config = cfg(aggregator_sync_period_s=0.0002)
    res = run_job(MaxCliqueComper, g, config, runtime="process")
    assert len(res.aggregate) == len(max_clique_reference(g))


def test_process_local_table_bytes_match_serial(graph):
    """S4 regression: the process runtime faults T_local rows in lazily,
    but by job end every owned row has been materialized, so each
    worker's trimmed local-table footprint must equal the serial
    runtime's (which loads eagerly)."""
    serial = run_job(MaxCliqueComper, graph, cfg(num_workers=2),
                     runtime="serial")
    process = run_job(MaxCliqueComper, graph, cfg(num_workers=2),
                      runtime="process")
    for wid in range(2):
        key = f"max:worker{wid}:local_table_bytes"
        assert serial.metrics.get(key, 0) > 0
        assert process.metrics.get(key) == serial.metrics.get(key), key


def test_process_merges_per_worker_metrics(graph):
    res = run_job(TriangleCountComper, graph, cfg(num_workers=2),
                  runtime="process")
    for wid in range(2):
        assert res.worker_metrics(wid).peak_memory_bytes > 0
    assert res.metrics.get("ipc:batches", 0) > 0


@settings(max_examples=6, deadline=None)
@given(
    n=st.integers(15, 45),
    p=st.floats(0.1, 0.3),
    seed=st.integers(0, 500),
    tau=st.integers(2, 40),
)
def test_mcf_correct_under_random_decomposition(n, p, seed, tau):
    """Task decomposition depth must never change the answer."""
    g = erdos_renyi(n, p, seed=seed)
    config = GThinkerConfig(num_workers=2, compers_per_worker=2,
                            task_batch_size=3, cache_capacity=64,
                            decompose_threshold=tau)
    res = run_job(MaxCliqueComper, g, config)
    assert len(res.aggregate or ()) == len(max_clique_reference(g))
